package core

import (
	"fmt"
	"time"

	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
	"github.com/bricklab/brick/internal/shmem"
)

// ShiftView implements the Shift ghost-zone exchange the paper discusses as
// related work (Palmer & Nieplocha): dimensions are exchanged one after
// another — ±i, then ±j, then ±k — and each phase forwards the ghost data
// received in earlier phases, so corner and edge neighbors are reached
// transitively with only 6 messages per rank. Each phase's slab is scattered
// across brick storage, so Shift fundamentally needs either packing or
// memory mapping; this implementation builds mmap views over the slabs (the
// paper's observation that Shift "is straightforward to implement using
// memory mapping"), with a copy-based fallback on unmapped storage.
//
// Shift trades message count (6 vs Layout's 42 or MemMap's 26) for three
// serialized communication phases per exchange.
//
// As an Exchanger, the whole three-phase exchange runs inside Start (the
// phases cannot overlap computation: each forwards ghost data the previous
// one received) and Complete is a no-op. With persistent plans (the
// default) the six transfers are pre-matched once and every phase reuses
// its fixed slab windows.
type ShiftView struct {
	PlanBase
	e          *BrickExchanger
	bs         *BrickStorage
	phases     [3][2]shiftMsg // [axis][0: negative dir, 1: positive dir]
	degraded   bool
	persistent bool
	preqs      [3]phaseReqs // persistent per-axis request sets
}

var _ Exchanger = (*ShiftView)(nil)

// phaseReqs is one axis phase's persistent requests.
type phaseReqs struct {
	recvs []*mpi.Request
	sends []*mpi.Request
	all   []*mpi.Request
}

type shiftMsg struct {
	dir  layout.Set // face direction of the transfer
	send *slabView  // data sent to the neighbor at dir
	recv *slabView  // ghost slab filled from the neighbor at dir
}

// slabView is a (possibly aliasing) contiguous window over a scattered set
// of bricks.
type slabView struct {
	spans []Span
	view  *shmem.View
	flat  []float64
}

// NewShiftView precomputes the six per-phase slab views and compiles the
// exchange plan.
func NewShiftView(e *BrickExchanger, bs *BrickStorage, opts ...PlanOption) (*ShiftView, error) {
	o := defaultPlanOpts()
	for _, f := range opts {
		f(&o)
	}
	sv := &ShiftView{e: e, bs: bs, persistent: o.persistent}
	d := e.d
	for axis := 0; axis < 3; axis++ {
		for side := 0; side < 2; side++ {
			dir := axisDir(axis, side)
			send, err := sv.makeSlab(d, sendSlabCoords(d, axis, side))
			if err != nil {
				return nil, fmt.Errorf("core: shift send slab %v: %w", dir, err)
			}
			recv, err := sv.makeSlab(d, recvSlabCoords(d, axis, side))
			if err != nil {
				return nil, fmt.Errorf("core: shift recv slab %v: %w", dir, err)
			}
			sv.phases[axis][side] = shiftMsg{dir: dir, send: send, recv: recv}
		}
	}
	// Compile the plan in phase order — receives then sends within each
	// axis, the same program order on every rank so persistent endpoints
	// pair deterministically.
	plan := ExchangePlan{Variant: "shift", Persistent: o.persistent}
	for axis := 0; axis < 3; axis++ {
		for side := 0; side < 2; side++ {
			m := sv.phases[axis][side]
			src := e.rank[m.dir]
			if src < 0 {
				continue
			}
			tag := dirIndex(m.dir.Opposite())*tagStride + 50 + axis
			plan.Recvs = append(plan.Recvs, PlanMsg{Peer: src, Tag: tag, Bytes: int64(8 * len(m.recv.flat))})
			if o.persistent {
				sv.preqs[axis].recvs = append(sv.preqs[axis].recvs, e.comm.RecvInit(src, tag, m.recv.flat))
			}
		}
		for side := 0; side < 2; side++ {
			m := sv.phases[axis][side]
			dst := e.rank[m.dir]
			if dst < 0 {
				continue
			}
			tag := dirIndex(m.dir)*tagStride + 50 + axis
			plan.Sends = append(plan.Sends, PlanMsg{Peer: dst, Tag: tag, Bytes: int64(8 * len(m.send.flat))})
			if o.persistent {
				sv.preqs[axis].sends = append(sv.preqs[axis].sends, e.comm.SendInit(dst, tag, m.send.flat))
			}
		}
		pr := &sv.preqs[axis]
		pr.all = make([]*mpi.Request, 0, len(pr.recvs)+len(pr.sends))
		pr.all = append(append(pr.all, pr.recvs...), pr.sends...)
	}
	sv.SetPlan(plan)
	return sv, nil
}

// axisDir returns the face direction for axis (0-based) and side (0 =
// negative, 1 = positive).
func axisDir(axis, side int) layout.Set {
	d := axis + 1
	if side == 0 {
		d = -d
	}
	return layout.FromDirs(d)
}

// sendSlabCoords lists the brick grid coordinates sent along axis/side: the
// surface band of width g on that side, spanning the full extended range on
// already-exchanged axes (< axis) and the domain range on later axes.
func sendSlabCoords(d *BrickDecomp, axis, side int) [][3]int {
	var lo, hi [3]int
	for a := 0; a < 3; a++ {
		switch {
		case a == axis:
			if side == 0 {
				lo[a], hi[a] = d.g, 2*d.g
			} else {
				lo[a], hi[a] = d.s[a], d.g+d.s[a]
			}
		case a < axis:
			lo[a], hi[a] = 0, d.n[a] // includes ghosts filled in earlier phases
		default:
			lo[a], hi[a] = d.g, d.g+d.s[a]
		}
	}
	return boxCoords(lo, hi)
}

// recvSlabCoords lists the ghost bricks filled from axis/side: the ghost
// band beyond the domain on that side, with the same cross-section as the
// matching sender slab.
func recvSlabCoords(d *BrickDecomp, axis, side int) [][3]int {
	var lo, hi [3]int
	for a := 0; a < 3; a++ {
		switch {
		case a == axis:
			if side == 0 {
				lo[a], hi[a] = 0, d.g
			} else {
				lo[a], hi[a] = d.g+d.s[a], d.n[a]
			}
		case a < axis:
			lo[a], hi[a] = 0, d.n[a]
		default:
			lo[a], hi[a] = d.g, d.g+d.s[a]
		}
	}
	return boxCoords(lo, hi)
}

func boxCoords(lo, hi [3]int) [][3]int {
	var out [][3]int
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			for i := lo[0]; i < hi[0]; i++ {
				out = append(out, [3]int{i, j, k})
			}
		}
	}
	return out
}

// makeSlab converts grid coordinates to storage spans IN GEOMETRIC ORDER
// and builds a contiguous window over them. Geometric (grid-lexicographic)
// order is the correspondence contract between the two ends of a shift
// transfer: an axis shift preserves it, while storage order differs between
// a sender's surface bricks and a receiver's ghost bricks.
func (sv *ShiftView) makeSlab(d *BrickDecomp, coords [][3]int) (*slabView, error) {
	idxs := make([]int, 0, len(coords))
	for _, c := range coords {
		idx := d.BrickIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("unmapped brick at %v", c)
		}
		idxs = append(idxs, idx)
	}
	var spans []Span
	for _, idx := range idxs {
		if n := len(spans); n > 0 && spans[n-1].End() == idx {
			spans[n-1].NBricks++
			spans[n-1].Padded++
		} else {
			spans = append(spans, Span{Start: idx, NBricks: 1, Padded: 1})
		}
	}
	s := &slabView{spans: spans}
	chunk := sv.bs.Chunk()
	chunkBytes := 8 * chunk
	if len(spans) == 1 {
		sp := spans[0]
		s.flat = sv.bs.Data[sp.Start*chunk : sp.End()*chunk]
		return s, nil
	}
	if arena := sv.bs.arena; arena != nil {
		segs := make([]shmem.Segment, len(spans))
		aligned := true
		for i, sp := range spans {
			segs[i] = shmem.Segment{Offset: sp.Start * chunkBytes, Len: sp.NBricks * chunkBytes}
			if segs[i].Offset%arena.PageSize() != 0 || segs[i].Len%arena.PageSize() != 0 {
				aligned = false
			}
		}
		if aligned || !arena.Mapped() {
			view, err := arena.MapVector(segs)
			if err != nil {
				return nil, err
			}
			s.view = view
			s.flat = view.Float64s()
			if !view.Mapped() {
				sv.degraded = true
			}
			return s, nil
		}
	}
	// Copy-based fallback window.
	total := 0
	for _, sp := range spans {
		total += sp.NBricks * chunk
	}
	s.flat = make([]float64, total)
	sv.degraded = true
	return s, nil
}

// gather refreshes a copy-based window from storage before sending.
func (s *slabView) gather(bs *BrickStorage) {
	if s.view != nil {
		s.view.Gather()
		return
	}
	if len(s.spans) == 1 {
		return // aliases storage directly
	}
	chunk := bs.Chunk()
	off := 0
	for _, sp := range s.spans {
		n := sp.NBricks * chunk
		copy(s.flat[off:off+n], bs.Data[sp.Start*chunk:sp.End()*chunk])
		off += n
	}
}

// scatter pushes a copy-based window back into storage after receiving.
func (s *slabView) scatter(bs *BrickStorage) {
	if s.view != nil {
		s.view.Scatter()
		return
	}
	if len(s.spans) == 1 {
		return
	}
	chunk := bs.Chunk()
	off := 0
	for _, sp := range s.spans {
		n := sp.NBricks * chunk
		copy(bs.Data[sp.Start*chunk:sp.End()*chunk], s.flat[off:off+n])
		off += n
	}
}

// Degraded reports whether any slab window is copy-based (effectively
// packing) rather than an aliasing mmap view.
func (sv *ShiftView) Degraded() bool { return sv.degraded }

// NumMessages returns the messages per exchange: 2 per dimension = 6 in 3D.
func (sv *ShiftView) NumMessages() int {
	n := 0
	for axis := 0; axis < 3; axis++ {
		for side := 0; side < 2; side++ {
			if sv.e.rank[sv.phases[axis][side].dir] >= 0 {
				n++
			}
		}
	}
	return n
}

// Exchange runs the three-phase shift exchange, returning the sends
// posted. It is equivalent to Start (Complete is a no-op for Shift).
func (sv *ShiftView) Exchange() int { return sv.Start() }

// Start runs the full three-phase shift exchange. Within each phase, both
// directions proceed concurrently; the phase completes before the next
// begins (later phases forward data received earlier), which is why Shift
// cannot overlap computation and Complete is a no-op. Phase time lands in
// Call (posting), Wait (completion), and — degraded storage only — Pack
// (gather/scatter copies).
func (sv *ShiftView) Start() int {
	e := sv.e
	n := 0
	for axis := 0; axis < 3; axis++ {
		pr := &sv.preqs[axis]
		t0 := time.Now()
		if sv.persistent {
			mpi.Startall(pr.recvs)
		} else {
			for side := 0; side < 2; side++ {
				m := sv.phases[axis][side]
				src := e.rank[m.dir]
				if src < 0 {
					continue
				}
				// The incoming data comes from the neighbor at dir; it sent
				// its own slab for the opposite side.
				tag := dirIndex(m.dir.Opposite())*tagStride + 50 + axis
				e.reqs = append(e.reqs, e.comm.Irecv(src, tag, m.recv.flat))
			}
		}
		call := time.Since(t0)
		if sv.degraded {
			// Aliasing views need no gather; only copy-based windows do.
			t0 = time.Now()
			for side := 0; side < 2; side++ {
				m := sv.phases[axis][side]
				if e.rank[m.dir] >= 0 {
					m.send.gather(sv.bs)
				}
			}
			sv.AddPack(time.Since(t0))
		}
		t0 = time.Now()
		if sv.persistent {
			mpi.Startall(pr.sends)
			n += len(pr.sends)
		} else {
			for side := 0; side < 2; side++ {
				m := sv.phases[axis][side]
				dst := e.rank[m.dir]
				if dst < 0 {
					continue
				}
				tag := dirIndex(m.dir)*tagStride + 50 + axis
				e.reqs = append(e.reqs, e.comm.Isend(dst, tag, m.send.flat))
				n++
			}
		}
		sv.AddCall(call + time.Since(t0))
		t0 = time.Now()
		if sv.persistent {
			mpi.Waitall(pr.all)
		} else {
			e.Wait()
		}
		sv.AddWait(time.Since(t0))
		if sv.degraded {
			t0 = time.Now()
			for side := 0; side < 2; side++ {
				m := sv.phases[axis][side]
				if e.rank[m.dir] >= 0 {
					m.recv.scatter(sv.bs)
				}
			}
			sv.AddPack(time.Since(t0))
		}
	}
	sv.RecordStart()
	return n
}

// Complete is a no-op: Start runs the serialized phases to completion.
func (sv *ShiftView) Complete() {}

// Close releases the mmap views and persistent endpoints.
func (sv *ShiftView) Close() error {
	// Free every endpoint before unmapping any slab view: the views back
	// the persistent buffers, and Free retracts undelivered Starts and
	// serializes against a peer's in-flight copy (see ExchangeView.Close).
	for axis := 0; axis < 3; axis++ {
		for _, r := range sv.preqs[axis].all {
			r.Free()
		}
		sv.preqs[axis] = phaseReqs{}
	}
	var first error
	for axis := 0; axis < 3; axis++ {
		for side := 0; side < 2; side++ {
			for _, s := range []*slabView{sv.phases[axis][side].send, sv.phases[axis][side].recv} {
				if s != nil && s.view != nil {
					if err := s.view.Close(); err != nil && first == nil {
						first = err
					}
				}
			}
		}
	}
	return first
}
