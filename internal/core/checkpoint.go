package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/bricklab/brick/internal/layout"
)

// Checkpointing: a BrickStorage snapshot is written together with the
// decomposition parameters that shaped it, so a restore can verify it is
// loading data with a compatible physical layout. The format is a fixed
// little-endian header followed by the raw float64 payload.

// checkpointMagic identifies the file format ("BRKCKPT1").
var checkpointMagic = [8]byte{'B', 'R', 'K', 'C', 'K', 'P', 'T', '1'}

// checkpointHeader captures everything that determines storage layout.
type checkpointHeader struct {
	Magic     [8]byte
	Shape     [3]int32
	Dom       [3]int32
	Ghost     int32
	Fields    int32
	PageBytes int32
	PerRegion int32 // bool
	OrderLen  int32
	_         int32 // padding to 8-byte alignment
	Elems     int64
}

// WriteCheckpoint serializes the storage contents and the decomposition's
// layout-determining parameters to w.
func (d *BrickDecomp) WriteCheckpoint(w io.Writer, bs *BrickStorage) error {
	if len(bs.Data) != d.nb*bs.Chunk() {
		return fmt.Errorf("core: storage has %d elements, decomposition needs %d", len(bs.Data), d.nb*bs.Chunk())
	}
	bw := bufio.NewWriter(w)
	h := checkpointHeader{
		Magic:     checkpointMagic,
		Shape:     [3]int32{int32(d.shape[0]), int32(d.shape[1]), int32(d.shape[2])},
		Dom:       [3]int32{int32(d.dom[0]), int32(d.dom[1]), int32(d.dom[2])},
		Ghost:     int32(d.ghost),
		Fields:    int32(d.fields),
		PageBytes: int32(d.pageBytes),
		OrderLen:  int32(len(d.order)),
		Elems:     int64(len(bs.Data)),
	}
	if d.perRegion {
		h.PerRegion = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, &h); err != nil {
		return err
	}
	for _, s := range d.order {
		if err := binary.Write(bw, binary.LittleEndian, uint32(s)); err != nil {
			return err
		}
	}
	buf := make([]byte, 8*4096)
	for off := 0; off < len(bs.Data); off += 4096 {
		n := len(bs.Data) - off
		if n > 4096 {
			n = 4096
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(bs.Data[off+i]))
		}
		if _, err := bw.Write(buf[:8*n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCheckpoint restores storage contents previously written by
// WriteCheckpoint. The checkpoint's decomposition parameters must match
// this decomposition exactly (same brick shape, domain, ghost width, field
// count, page alignment, message mode, and layout order); otherwise an
// error describes the first mismatch.
func (d *BrickDecomp) ReadCheckpoint(r io.Reader, bs *BrickStorage) error {
	br := bufio.NewReader(r)
	var h checkpointHeader
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return fmt.Errorf("core: reading checkpoint header: %w", err)
	}
	if h.Magic != checkpointMagic {
		return fmt.Errorf("core: not a brick checkpoint (bad magic)")
	}
	for a := 0; a < 3; a++ {
		if int(h.Shape[a]) != d.shape[a] {
			return fmt.Errorf("core: checkpoint brick shape axis %d is %d, decomposition has %d", a, h.Shape[a], d.shape[a])
		}
		if int(h.Dom[a]) != d.dom[a] {
			return fmt.Errorf("core: checkpoint domain axis %d is %d, decomposition has %d", a, h.Dom[a], d.dom[a])
		}
	}
	if int(h.Ghost) != d.ghost {
		return fmt.Errorf("core: checkpoint ghost %d, decomposition %d", h.Ghost, d.ghost)
	}
	if int(h.Fields) != d.fields {
		return fmt.Errorf("core: checkpoint fields %d, decomposition %d", h.Fields, d.fields)
	}
	if int(h.PageBytes) != d.pageBytes {
		return fmt.Errorf("core: checkpoint page alignment %d, decomposition %d", h.PageBytes, d.pageBytes)
	}
	if (h.PerRegion == 1) != d.perRegion {
		return fmt.Errorf("core: checkpoint message mode mismatch")
	}
	if int(h.OrderLen) != len(d.order) {
		return fmt.Errorf("core: checkpoint order has %d regions, decomposition %d", h.OrderLen, len(d.order))
	}
	for i := 0; i < int(h.OrderLen); i++ {
		var s uint32
		if err := binary.Read(br, binary.LittleEndian, &s); err != nil {
			return err
		}
		if layout.Set(s) != d.order[i] {
			return fmt.Errorf("core: checkpoint layout order differs at position %d (%v vs %v)", i, layout.Set(s), d.order[i])
		}
	}
	if h.Elems != int64(len(bs.Data)) {
		return fmt.Errorf("core: checkpoint has %d elements, storage %d", h.Elems, len(bs.Data))
	}
	buf := make([]byte, 8*4096)
	for off := 0; off < len(bs.Data); off += 4096 {
		n := len(bs.Data) - off
		if n > 4096 {
			n = 4096
		}
		if _, err := io.ReadFull(br, buf[:8*n]); err != nil {
			return fmt.Errorf("core: reading checkpoint payload: %w", err)
		}
		for i := 0; i < n; i++ {
			bs.Data[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	return nil
}
