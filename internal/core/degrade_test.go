package core

import (
	"math"
	"os"
	"testing"

	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
)

// TestExchangeMemMapUnmappedParity: forced-unmapped arena storage (the
// injected form of a runtime shm failure) must produce a fully correct
// exchange on every platform, Linux included.
func TestExchangeMemMapUnmappedParity(t *testing.T) {
	verifyExchange(t, [3]int{2, 2, 2}, [3]int{16, 16, 16}, 4, 1, layout.Surface3D(), kindMemMapUnmapped)
}

// memMapRun drives a multi-step MemMap exchange on 8 ranks and returns
// each rank's final storage as raw float64 bits plus its plan's degraded
// reason. alloc picks the storage flavor; degradeAt (-1 = never) calls
// ExchangeView.Degrade between steps, exercising the mid-run fallback.
func memMapRun(t *testing.T, alloc func(*BrickDecomp) (*BrickStorage, error), degradeAt int) (bits [][]uint64, reasons []string) {
	t.Helper()
	const steps = 3
	dom := [3]int{16, 16, 16}
	ghost, fields := 4, 1
	bits = make([][]uint64, 8)
	reasons = make([]string, 8)
	w := mpi.NewWorld(8)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		co := cart.MyCoords()
		origin := [3]int{co[2] * dom[0], co[1] * dom[1], co[0] * dom[2]}
		d, err := NewBrickDecomp(Shape{4, 4, 4}, dom, ghost, fields, layout.Surface3D(),
			WithPageAlignment(os.Getpagesize()))
		if err != nil {
			t.Error(err)
			return
		}
		bs, err := alloc(d)
		if err != nil {
			t.Error(err)
			return
		}
		defer bs.Close()
		for z := 0; z < dom[2]; z++ {
			for y := 0; y < dom[1]; y++ {
				for x := 0; x < dom[0]; x++ {
					d.SetElem(bs, 0, x+ghost, y+ghost, z+ghost,
						globalValue(0, origin[0]+x, origin[1]+y, origin[2]+z))
				}
			}
		}
		ev, err := NewExchangeView(NewExchanger(d, cart), bs)
		if err != nil {
			t.Error(err)
			return
		}
		defer ev.Close()
		for s := 0; s < steps; s++ {
			ev.Exchange()
			// A deterministic compute-like update so post-degrade steps send
			// fresh surface data, proving the copy windows re-gather.
			for z := 0; z < dom[2]; z++ {
				for y := 0; y < dom[1]; y++ {
					for x := 0; x < dom[0]; x++ {
						v := d.Elem(bs, 0, x+ghost, y+ghost, z+ghost)
						d.SetElem(bs, 0, x+ghost, y+ghost, z+ghost, v*1.25+1)
					}
				}
			}
			if s == degradeAt {
				if err := ev.Degrade(DegradeForced); err != nil {
					t.Errorf("Degrade: %v", err)
					return
				}
				if !ev.Degraded() {
					t.Error("Degrade did not mark the exchanger degraded")
				}
			}
		}
		ev.Exchange() // one more so the degraded windows carry the last update
		out := make([]uint64, len(bs.Data))
		for i, v := range bs.Data {
			out[i] = math.Float64bits(v)
		}
		bits[c.Rank()] = out
		reasons[c.Rank()] = ev.Plan().Summary().Degraded
	})
	return bits, reasons
}

func compareBits(t *testing.T, a, b [][]uint64, label string) {
	t.Helper()
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("%s: rank %d storage sizes differ: %d vs %d", label, r, len(a[r]), len(b[r]))
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("%s: rank %d element %d differs: %x vs %x", label, r, i, a[r][i], b[r][i])
			}
		}
	}
}

// TestExchangeUnmappedBitIdenticalToMapped: a run on forced-unmapped
// storage must be bit-identical to the mapped run — degradation changes
// data movement cost, never results.
func TestExchangeUnmappedBitIdenticalToMapped(t *testing.T) {
	mapped, mr := memMapRun(t, (*BrickDecomp).MmapAllocate, -1)
	unmapped, ur := memMapRun(t, (*BrickDecomp).MmapAllocateUnmapped, -1)
	compareBits(t, mapped, unmapped, "mapped vs unmapped")
	for r, reason := range ur {
		if reason != DegradeUnmappedArena {
			t.Errorf("rank %d unmapped reason = %q, want %q", r, reason, DegradeUnmappedArena)
		}
	}
	// On platforms with real mapping the reference run must be full service.
	if mr[0] == DegradeHeapStorage {
		t.Errorf("mapped run reported heap storage")
	}
}

// TestExchangeMidRunDegradeBitIdentical: degrading mapped views to copy
// windows between steps — rebinding the persistent sends to the new
// windows — must leave every subsequent step bit-identical to the run that
// never degraded.
func TestExchangeMidRunDegradeBitIdentical(t *testing.T) {
	clean, cr := memMapRun(t, (*BrickDecomp).MmapAllocate, -1)
	degraded, dr := memMapRun(t, (*BrickDecomp).MmapAllocate, 1)
	compareBits(t, clean, degraded, "clean vs mid-run degraded")
	for r := range dr {
		if dr[r] != DegradeForced {
			t.Errorf("rank %d degraded reason = %q, want %q", r, dr[r], DegradeForced)
		}
		if cr[r] != "" {
			t.Errorf("rank %d clean run reason = %q, want empty", r, cr[r])
		}
	}
}

// TestExchangeMapFailureDegradesInsteadOfFailing: a mapped arena whose
// surface runs cannot be mapped (not page-aligned, because the decomp was
// built without WithPageAlignment) used to fail plan compilation; it must
// now degrade those neighbors to copy windows and still exchange
// correctly.
func TestExchangeMapFailureDegradesInsteadOfFailing(t *testing.T) {
	dom := [3]int{16, 16, 16}
	w := mpi.NewWorld(8)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		d := mustDecomp(t, Shape{4, 4, 4}, dom, 4, 1, layout.Surface3D()) // no page alignment
		bs, err := d.MmapAllocate()
		if err != nil {
			t.Error(err)
			return
		}
		defer bs.Close()
		if !bs.Mapped() {
			t.Skip("no real mapping on this platform; fallback covered elsewhere")
		}
		ev, err := NewExchangeView(NewExchanger(d, cart), bs)
		if err != nil {
			t.Errorf("NewExchangeView failed instead of degrading: %v", err)
			return
		}
		defer ev.Close()
		if !ev.Degraded() || ev.DegradedReason() != DegradeMapFailed {
			t.Errorf("degraded=%v reason=%q, want map-failed fallback", ev.Degraded(), ev.DegradedReason())
		}
		ev.Exchange()
	})
}
