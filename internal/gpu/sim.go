package gpu

import (
	"fmt"
	"time"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/grid"
	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
	"github.com/bricklab/brick/internal/netmodel"
	"github.com/bricklab/brick/internal/stencil"
)

// Strategy selects a GPU communication implementation from the paper's V1
// experiment.
type Strategy int

// The four evaluated strategies.
const (
	// LayoutCA: brick layout in device memory, CUDA-Aware MPI with
	// GPUDirect RDMA (no host staging, no page faults).
	LayoutCA Strategy = iota
	// LayoutUM: brick layout in unified memory; MPI runs on the host and
	// pages migrate on demand. Communicated regions are not page-aligned,
	// so neighboring interior data shares their pages.
	LayoutUM
	// MemMapUM: memory-mapped views in unified memory; one padded,
	// page-aligned message per neighbor.
	MemMapUM
	// TypesUM: lexicographic array in unified memory exchanged with MPI
	// derived datatypes (the paper's slowest configuration).
	TypesUM
	// StagedArray: the pre-CUDA-Aware practice the paper's introduction
	// describes — packing on the CPU requires moving the entire subdomain
	// between device and host around every exchange (Table 3's "manual
	// CPU-GPU data movement: high").
	StagedArray
)

func (s Strategy) String() string {
	switch s {
	case LayoutCA:
		return "LayoutCA"
	case LayoutUM:
		return "LayoutUM"
	case MemMapUM:
		return "MemMapUM"
	case TypesUM:
		return "MPI_TypesUM"
	case StagedArray:
		return "Staged"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config describes one simulated GPU rank.
type Config struct {
	Strategy Strategy
	Dom      [3]int
	Ghost    int
	Shape    core.Shape
	Order    []layout.Set
	Machine  netmodel.Machine
	Spec     DeviceSpec
	Stencil  stencil.Stencil
}

// CommCost is the modeled cost of one exchange.
type CommCost struct {
	Link   time.Duration // network / GPUDirect transfer time
	Fault  time.Duration // unified-memory page migrations
	Engine time.Duration // datatype-engine per-element overhead
	Msgs   int
	Data   int64 // payload bytes sent
	Wire   int64 // bytes on the wire including padding
}

// Total returns the summed modeled communication time.
func (c CommCost) Total() time.Duration { return c.Link + c.Fault + c.Engine }

// Sim is one GPU rank executing timesteps functionally (real data movement
// through the in-process MPI) while charging modeled time.
type Sim struct {
	Cfg Config
	Dev *Device

	// brick-based strategies
	dec  *core.BrickDecomp
	bs   *core.BrickStorage
	info *core.BrickInfo
	ex   *core.BrickExchanger
	ev   *core.ExchangeView
	pt   *PageTable

	// TypesUM / StagedArray
	g  [2]*grid.Grid
	gx [2]*grid.TypesExchanger
	px [2]*grid.PackExchanger

	cur int // current source field / grid
}

// NewSim builds a simulated GPU rank on the given Cartesian topology.
func NewSim(cart *mpi.Cart, cfg Config) (*Sim, error) {
	s := &Sim{Cfg: cfg, Dev: NewDevice(cfg.Spec, cfg.Machine)}
	if cfg.Strategy == StagedArray {
		s.g[0] = grid.New(cfg.Dom, cfg.Ghost)
		s.g[1] = grid.New(cfg.Dom, cfg.Ghost)
		s.px[0] = grid.NewPackExchanger(s.g[0], cart)
		s.px[1] = grid.NewPackExchanger(s.g[1], cart)
		return s, nil
	}
	if cfg.Strategy == TypesUM {
		s.g[0] = grid.New(cfg.Dom, cfg.Ghost)
		s.g[1] = grid.New(cfg.Dom, cfg.Ghost)
		s.gx[0] = grid.NewTypesExchanger(s.g[0], cart)
		s.gx[1] = grid.NewTypesExchanger(s.g[1], cart)
		s.pt = NewPageTable(s.Dev, 8*len(s.g[0].Data))
		return s, nil
	}
	var opts []core.Option
	if cfg.Strategy == MemMapUM {
		opts = append(opts, core.WithPageAlignment(cfg.Spec.PageSize))
	}
	dec, err := core.NewBrickDecomp(cfg.Shape, cfg.Dom, cfg.Ghost, 2, cfg.Order, opts...)
	if err != nil {
		return nil, err
	}
	s.dec = dec
	switch cfg.Strategy {
	case MemMapUM:
		if s.bs, err = dec.MmapAllocate(); err != nil {
			return nil, err
		}
	default:
		s.bs = dec.Allocate()
	}
	s.info = dec.BrickInfo()
	s.ex = core.NewExchanger(dec, cart)
	if cfg.Strategy == MemMapUM {
		if s.ev, err = core.NewExchangeView(s.ex, s.bs); err != nil {
			return nil, err
		}
	}
	if cfg.Strategy != LayoutCA {
		s.pt = NewPageTable(s.Dev, 8*len(s.bs.Data))
	}
	return s, nil
}

// Close releases views and arena storage.
func (s *Sim) Close() error {
	if s.ev != nil {
		s.ev.Close()
	}
	if s.bs != nil {
		return s.bs.Close()
	}
	return nil
}

// Init fills the domain of the current source buffer via f(x,y,z) in
// domain-local element coordinates.
func (s *Sim) Init(f func(x, y, z int) float64) {
	g := s.Cfg.Ghost
	for z := 0; z < s.Cfg.Dom[2]; z++ {
		for y := 0; y < s.Cfg.Dom[1]; y++ {
			for x := 0; x < s.Cfg.Dom[0]; x++ {
				s.SetElem(x+g, y+g, z+g, f(x, y, z))
			}
		}
	}
}

// gridBased reports whether the strategy stores data in a lexicographic
// array rather than bricks.
func (s *Sim) gridBased() bool {
	return s.Cfg.Strategy == TypesUM || s.Cfg.Strategy == StagedArray
}

// Elem reads an extended-coordinate element of the current source buffer.
func (s *Sim) Elem(i, j, k int) float64 {
	if s.gridBased() {
		return s.g[s.cur].At(i, j, k)
	}
	return s.dec.Elem(s.bs, s.cur, i, j, k)
}

// SetElem writes an extended-coordinate element of the current source buffer.
func (s *Sim) SetElem(i, j, k int, v float64) {
	if s.gridBased() {
		s.g[s.cur].Set(i, j, k, v)
		return
	}
	s.dec.SetElem(s.bs, s.cur, i, j, k, v)
}

// Exchange runs one real ghost-zone exchange and returns its modeled cost.
func (s *Sim) Exchange() CommCost {
	var c CommCost
	switch s.Cfg.Strategy {
	case StagedArray:
		// Move the whole extended subdomain D2H, pack-exchange on the host,
		// move it back H2D. The staging dominates: two full-array transfers
		// per exchange regardless of ghost volume.
		whole := 8 * len(s.g[s.cur].Data)
		c.Fault += s.Cfg.Machine.Cost(netmodel.HostDevice, whole) // D2H
		var tm grid.PackTimings
		s.px[s.cur].Exchange(&tm)
		c.Engine += tm.Pack // real measured packing on the host
		for _, dir := range layout.Regions(3) {
			lo, hi := s.g[s.cur].SendRegion(dir)
			n := 8 * grid.RegionCount(lo, hi)
			c.Link += s.Cfg.Machine.Cost(netmodel.Network, n)
			c.Msgs++
			c.Data += int64(n)
			c.Wire += int64(n)
		}
		c.Fault += s.Cfg.Machine.Cost(netmodel.HostDevice, whole) // H2D
	case TypesUM:
		// Fault in the regions the host-side datatype engine walks,
		// row-accurately (a strided walk touches each row's pages).
		for _, dir := range layout.Regions(3) {
			slo, shi := s.g[s.cur].SendRegion(dir)
			rlo, rhi := s.g[s.cur].RecvRegion(dir)
			c.Fault += s.faultRows(s.g[s.cur], slo, shi)
			c.Fault += s.faultRows(s.g[s.cur], rlo, rhi)
			n := 8 * grid.RegionCount(slo, shi)
			c.Link += s.Cfg.Machine.Cost(netmodel.Network, n)
			c.Msgs++
			c.Data += int64(n)
			c.Wire += int64(n)
			c.Engine += time.Duration(2*grid.RegionCount(slo, shi)) * s.Cfg.Machine.TypeElemCost
		}
		// Run the real exchange on the current buffer.
		s.gx[s.cur].Exchange(nil)
	case LayoutCA:
		chunkBytes := 8 * s.bs.Chunk()
		for _, m := range s.dec.SendMessages() {
			if s.ex.NeighborRank(m.Dir) < 0 {
				continue
			}
			n := m.Span.Padded * chunkBytes
			c.Link += s.Cfg.Machine.Cost(netmodel.GPUDirect, n)
			c.Msgs++
			c.Data += int64(m.Span.NBricks * chunkBytes)
			c.Wire += int64(n)
		}
		s.ex.Exchange(s.bs)
	case LayoutUM:
		chunkBytes := 8 * s.bs.Chunk()
		for _, m := range s.dec.SendMessages() {
			if s.ex.NeighborRank(m.Dir) < 0 {
				continue
			}
			n := m.Span.Padded * chunkBytes
			c.Link += s.Cfg.Machine.Cost(netmodel.Network, n)
			c.Msgs++
			c.Data += int64(m.Span.NBricks * chunkBytes)
			c.Wire += int64(n)
			c.Fault += s.pt.HostAccess(m.Span.Start*chunkBytes, n)
		}
		for _, m := range s.dec.RecvMessages() {
			if s.ex.NeighborRank(m.Dir) < 0 {
				continue
			}
			c.Fault += s.pt.HostAccess(m.Span.Start*chunkBytes, m.Span.Padded*chunkBytes)
		}
		s.ex.Exchange(s.bs)
	case MemMapUM:
		chunkBytes := 8 * s.bs.Chunk()
		perDir := map[layout.Set]*CommCost{}
		for _, m := range s.dec.SendMessages() {
			if s.ex.NeighborRank(m.Dir) < 0 {
				continue
			}
			pc := perDir[m.Dir]
			if pc == nil {
				pc = &CommCost{}
				perDir[m.Dir] = pc
			}
			pc.Data += int64(m.Span.NBricks * chunkBytes)
			pc.Wire += int64(m.Span.Padded * chunkBytes)
			c.Fault += s.pt.HostAccess(m.Span.Start*chunkBytes, m.Span.Padded*chunkBytes)
		}
		for _, pc := range perDir {
			c.Link += s.Cfg.Machine.Cost(netmodel.Network, int(pc.Wire))
			c.Msgs++
			c.Data += pc.Data
			c.Wire += pc.Wire
		}
		for _, u := range s.dec.Order() {
			if s.ex.NeighborRank(u) < 0 {
				continue
			}
			grp := s.dec.GhostGroup(u)
			c.Fault += s.pt.HostAccess(grp.Start*chunkBytes, grp.Padded*chunkBytes)
		}
		s.ev.Exchange()
	}
	return c
}

// faultRows charges host faults for each contiguous row of a region.
func (s *Sim) faultRows(g *grid.Grid, lo, hi [3]int) time.Duration {
	var total time.Duration
	w := 8 * (hi[0] - lo[0])
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			total += s.pt.HostAccess(8*g.Idx(lo[0], j, k), w)
		}
	}
	return total
}

// NetworkFloor returns the modeled minimum communication time for this
// subdomain: one message per neighbor carrying the unpadded ghost payload
// over the given link (the paper's Network / NetworkCA reference lines).
func NetworkFloor(dec *core.BrickDecomp, mach netmodel.Machine, kind netmodel.LinkKind) time.Duration {
	chunkBytes := 8 * dec.Fields() * dec.Shape().Vol()
	perDir := map[layout.Set]int{}
	for _, m := range dec.SendMessages() {
		perDir[m.Dir] += m.Span.NBricks * chunkBytes
	}
	var total time.Duration
	for _, n := range perDir {
		total += mach.Cost(kind, n)
	}
	return total
}

// Compute applies the stencil with the given ghost-expansion margin, swaps
// buffers, and returns the modeled kernel + fault time.
func (s *Sim) Compute(margin int) time.Duration {
	elems := (s.Cfg.Dom[0] + 2*margin) * (s.Cfg.Dom[1] + 2*margin) * (s.Cfg.Dom[2] + 2*margin)
	var fault time.Duration
	if s.pt != nil {
		// The GPU touches the whole working set; pages the host-side MPI
		// pulled away fault back in.
		if s.gridBased() {
			fault = s.pt.DeviceAccess(0, 8*len(s.g[s.cur].Data))
		} else {
			fault = s.pt.DeviceAccess(0, 8*len(s.bs.Data))
		}
	}
	if s.gridBased() {
		stencil.ApplyGrid(s.g[1-s.cur], s.g[s.cur], s.Cfg.Stencil, margin)
	} else {
		src := core.NewBrick(s.info, s.bs, s.cur)
		dst := core.NewBrick(s.info, s.bs, 1-s.cur)
		stencil.ApplyBricks(dst, src, s.dec, s.Cfg.Stencil, margin)
	}
	s.cur = 1 - s.cur
	kernel := s.Dev.Kernel(elems, s.Cfg.Stencil.Flops(), 16)
	return kernel + fault
}
