// Package gpu simulates the data-movement behaviour of a GPU-accelerated
// rank for the paper's Summit (V1/V2) experiments. Go has no CUDA; the
// computation itself runs on the CPU (bit-identical to the CPU path, so
// correctness is real), while time is charged to a deterministic model:
//
//   - kernels follow a roofline (max of flop-limited and bandwidth-limited
//     time) plus a launch overhead;
//   - unified-memory accesses go through a page table at host page
//     granularity, and every residency miss pays a page-fault service cost
//     plus migration at link bandwidth — which is how the paper's LayoutUM
//     compute penalty (unaligned regions sharing pages with interior data)
//     and MemMapUM padding traffic (Table 2) arise naturally;
//   - CUDA-Aware sends bypass the host at GPUDirect cost.
//
// DESIGN.md and EXPERIMENTS.md flag every V1/V2 number as modeled.
package gpu

import (
	"time"

	"github.com/bricklab/brick/internal/netmodel"
)

// DeviceSpec is the compute roofline of the simulated accelerator.
type DeviceSpec struct {
	Name     string
	Flops    float64       // peak double-precision flop/s
	MemBW    float64       // device memory bytes/s
	Launch   time.Duration // kernel launch overhead
	PageSize int           // unified-memory page granularity (host page)
}

// V100 returns the paper's NVIDIA Volta V100 as configured on Summit:
// 7.8 TF/s double precision, 828.8 GB/s HBM2, 64 KiB Power9 host pages.
func V100() DeviceSpec {
	return DeviceSpec{
		Name:     "v100",
		Flops:    7.8e12,
		MemBW:    828.8e9,
		Launch:   6 * time.Microsecond,
		PageSize: 65536,
	}
}

// Device accumulates the simulated timeline and data-movement counters of
// one GPU.
type Device struct {
	Spec DeviceSpec
	Mach netmodel.Machine

	// KernelTime is total modeled kernel execution time.
	KernelTime time.Duration
	// FaultTime is total modeled page-fault service + migration time.
	FaultTime time.Duration
	// Faults counts page migrations in either direction.
	Faults int
	// MigratedBytes counts page-migration traffic.
	MigratedBytes int64
}

// NewDevice builds a device against a machine profile.
func NewDevice(spec DeviceSpec, mach netmodel.Machine) *Device {
	return &Device{Spec: spec, Mach: mach}
}

// Kernel charges one kernel execution over the given element count, flops
// per element, and bytes of memory traffic per element, returning its
// modeled duration.
func (d *Device) Kernel(elems, flopsPerElem, bytesPerElem int) time.Duration {
	if elems <= 0 {
		return 0
	}
	flopTime := float64(elems*flopsPerElem) / d.Spec.Flops
	memTime := float64(elems*bytesPerElem) / d.Spec.MemBW
	t := flopTime
	if memTime > t {
		t = memTime
	}
	dur := d.Spec.Launch + time.Duration(t*float64(time.Second))
	d.KernelTime += dur
	return dur
}

// faultRange charges the migration of a contiguous run of pages: one fault
// service latency for the run (ATS batches and prefetches neighbouring
// pages) plus migration of the payload at link bandwidth.
func (d *Device) faultRange(pages, pageBytes int) time.Duration {
	if pages <= 0 {
		return 0
	}
	bytes := pages * pageBytes
	dur := d.Mach.Cost(netmodel.PageMigration, bytes)
	d.FaultTime += dur
	d.Faults += pages
	d.MigratedBytes += int64(bytes)
	return dur
}

// Reset clears the counters, keeping the configuration.
func (d *Device) Reset() {
	d.KernelTime, d.FaultTime = 0, 0
	d.Faults, d.MigratedBytes = 0, 0
}

// Residency says where a unified-memory page currently lives.
type Residency uint8

// Residency states.
const (
	OnDevice Residency = iota
	OnHost
)

// PageTable tracks unified-memory residency for one allocation at page
// granularity. All pages start on the device (first touch by the GPU).
type PageTable struct {
	dev       *Device
	pageBytes int
	res       []Residency
}

// NewPageTable covers sizeBytes of unified memory.
func NewPageTable(dev *Device, sizeBytes int) *PageTable {
	pb := dev.Spec.PageSize
	if pb <= 0 {
		panic("gpu: page size must be positive")
	}
	n := (sizeBytes + pb - 1) / pb
	return &PageTable{dev: dev, pageBytes: pb, res: make([]Residency, n)}
}

// NumPages returns the number of pages covered.
func (pt *PageTable) NumPages() int { return len(pt.res) }

// PageBytes returns the page granularity.
func (pt *PageTable) PageBytes() int { return pt.pageBytes }

// access migrates the pages overlapping [off, off+n) bytes to the given
// residency, charging a fault per moved page, and returns the total cost.
func (pt *PageTable) access(off, n int, want Residency) time.Duration {
	if n <= 0 {
		return 0
	}
	first := off / pt.pageBytes
	last := (off + n - 1) / pt.pageBytes
	if first < 0 || last >= len(pt.res) {
		panic("gpu: access outside page table")
	}
	// Migrate per contiguous run of non-resident pages: each run pays one
	// fault latency plus bandwidth for its payload.
	var total time.Duration
	run := 0
	for p := first; p <= last; p++ {
		if pt.res[p] != want {
			pt.res[p] = want
			run++
			continue
		}
		total += pt.dev.faultRange(run, pt.pageBytes)
		run = 0
	}
	total += pt.dev.faultRange(run, pt.pageBytes)
	return total
}

// HostAccess models the host (MPI) touching [off, off+n) bytes of unified
// memory under ATS: page-aligned spans are accessed remotely with no
// residency change, but partial pages at unaligned boundaries — pages
// shared between communicated and computation data — migrate to the host.
// This is exactly the effect the paper reports in Figure 15: communicated
// regions that are not aligned to page boundaries degrade the subsequent
// GPU computation, while MemMap's aligned regions do not.
func (pt *PageTable) HostAccess(off, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	var total time.Duration
	if head := off % pt.pageBytes; head != 0 {
		// Partial first page.
		total += pt.access(off, min(n, pt.pageBytes-head), OnHost)
	}
	if tail := (off + n) % pt.pageBytes; tail != 0 && (off+n)/pt.pageBytes != off/pt.pageBytes {
		// Partial last page.
		total += pt.access(off+n-tail, tail, OnHost)
	}
	return total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DeviceAccess makes [off, off+n) bytes device-resident (the GPU faulting
// back pages the host pulled away), charging migrations.
func (pt *PageTable) DeviceAccess(off, n int) time.Duration { return pt.access(off, n, OnDevice) }

// ResidentOnDevice counts device-resident pages (for tests/inspection).
func (pt *PageTable) ResidentOnDevice() int {
	n := 0
	for _, r := range pt.res {
		if r == OnDevice {
			n++
		}
	}
	return n
}
