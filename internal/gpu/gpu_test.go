package gpu

import (
	"math"
	"testing"
	"time"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
	"github.com/bricklab/brick/internal/netmodel"
	"github.com/bricklab/brick/internal/stencil"
)

func TestKernelRoofline(t *testing.T) {
	spec := DeviceSpec{Flops: 1e9, MemBW: 1e9, Launch: time.Microsecond, PageSize: 4096}
	d := NewDevice(spec, netmodel.SummitV100())
	// Flop-bound: 1000 elems × 1000 flops at 1 GF/s = 1 ms; memory side is
	// 16 KB at 1 GB/s = 16 µs.
	got := d.Kernel(1000, 1000, 16)
	want := time.Millisecond + time.Microsecond
	if got != want {
		t.Errorf("flop-bound kernel = %v, want %v", got, want)
	}
	// Memory-bound: 1000 elems × 1 flop, 1 MB traffic -> 1 ms.
	got = d.Kernel(1000, 1, 1000)
	if got != want {
		t.Errorf("mem-bound kernel = %v, want %v", got, want)
	}
	if d.KernelTime != 2*want {
		t.Errorf("accumulated = %v", d.KernelTime)
	}
	if d.Kernel(0, 10, 10) != 0 {
		t.Error("empty kernel should cost nothing")
	}
	d.Reset()
	if d.KernelTime != 0 || d.Faults != 0 {
		t.Error("reset incomplete")
	}
}

func TestPageTable(t *testing.T) {
	spec := V100()
	spec.PageSize = 4096
	d := NewDevice(spec, netmodel.SummitV100())
	pt := NewPageTable(d, 10*4096)
	if pt.NumPages() != 10 {
		t.Fatalf("pages = %d", pt.NumPages())
	}
	// All pages start on device.
	if pt.ResidentOnDevice() != 10 {
		t.Fatal("initial residency")
	}
	// Host touches 1.5 pages: the aligned first page is accessed remotely
	// (no migration); the partial second page migrates -> 1 fault.
	cost := pt.HostAccess(0, 6000)
	if d.Faults != 1 || cost <= 0 {
		t.Errorf("faults = %d cost = %v", d.Faults, cost)
	}
	if pt.ResidentOnDevice() != 9 {
		t.Errorf("device-resident = %d, want 9", pt.ResidentOnDevice())
	}
	// Re-touching is free.
	if pt.HostAccess(0, 6000) != 0 {
		t.Error("repeat access charged")
	}
	// A fully page-aligned host access never migrates.
	if pt.HostAccess(2*4096, 3*4096) != 0 {
		t.Error("aligned access migrated pages")
	}
	// An unaligned access with both ends partial migrates both end pages.
	if pt.HostAccess(3*4096+8, 4096) == 0 || d.Faults != 3 {
		t.Errorf("double-partial access: faults = %d, want 3", d.Faults)
	}
	// Device pulls everything back: only the host pages fault.
	pt.DeviceAccess(0, 10*4096)
	if d.Faults != 6 {
		t.Errorf("faults = %d, want 6", d.Faults)
	}
	if pt.ResidentOnDevice() != 10 {
		t.Error("not all device resident")
	}
	// Zero-length access is free.
	if pt.HostAccess(100, 0) != 0 {
		t.Error("zero access charged")
	}
}

func TestPageTableOutOfRangePanics(t *testing.T) {
	d := NewDevice(V100(), netmodel.SummitV100())
	pt := NewPageTable(d, 65536)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	pt.HostAccess(0, 65537)
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		LayoutCA: "LayoutCA", LayoutUM: "LayoutUM",
		MemMapUM: "MemMapUM", TypesUM: "MPI_TypesUM", Strategy(9): "Strategy(9)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d -> %q", int(s), s.String())
		}
	}
}

// runStrategy executes a few timesteps on 8 simulated GPU ranks and checks
// numerical agreement with a CPU reference (single-rank periodic equivalent
// is complex; instead strategies are compared pairwise: all four must agree
// element-wise since they implement the same math).
func runStrategy(t *testing.T, strat Strategy, dom [3]int, steps int) ([]float64, CommCost) {
	t.Helper()
	const ghost = 4
	st := stencil.Star7()
	var result []float64
	var cost CommCost
	w := mpi.NewWorld(8)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		spec := V100()
		spec.PageSize = 4096 // keep arena-view compatibility in tests
		sim, err := NewSim(cart, Config{
			Strategy: strat,
			Dom:      dom,
			Ghost:    ghost,
			Shape:    core.Shape{4, 4, 4},
			Order:    layout.Surface3D(),
			Machine:  netmodel.SummitV100(),
			Spec:     spec,
			Stencil:  st,
		})
		if err != nil {
			t.Error(err)
			return
		}
		defer sim.Close()
		co := cart.MyCoords()
		sim.Init(func(x, y, z int) float64 {
			gx := co[2]*dom[0] + x
			gy := co[1]*dom[1] + y
			gz := co[0]*dom[2] + z
			return math.Sin(float64(gx)) + math.Cos(float64(gy)*0.7) + float64(gz)*0.01
		})
		for s := 0; s < steps; s++ {
			cc := sim.Exchange()
			sim.Compute(0)
			if c.Rank() == 0 {
				cost.Link += cc.Link
				cost.Fault += cc.Fault
				cost.Engine += cc.Engine
				cost.Msgs += cc.Msgs
				cost.Data += cc.Data
				cost.Wire += cc.Wire
			}
		}
		if c.Rank() == 0 {
			result = make([]float64, 0, dom[0]*dom[1]*dom[2])
			for z := 0; z < dom[2]; z++ {
				for y := 0; y < dom[1]; y++ {
					for x := 0; x < dom[0]; x++ {
						result = append(result, sim.Elem(x+ghost, y+ghost, z+ghost))
					}
				}
			}
		}
	})
	return result, cost
}

func TestStrategiesAgreeNumerically(t *testing.T) {
	// dom 12³ with 4³ bricks and ghost 4: every surface region is non-empty,
	// so the full 42-message plan is exercised.
	dom := [3]int{12, 12, 12}
	ref, refCost := runStrategy(t, LayoutCA, dom, 3)
	if refCost.Msgs != 3*42 {
		t.Errorf("LayoutCA messages = %d, want 126", refCost.Msgs)
	}
	for _, strat := range []Strategy{LayoutUM, MemMapUM, TypesUM} {
		got, _ := runStrategy(t, strat, dom, 3)
		if len(got) != len(ref) {
			t.Fatalf("%v: length %d vs %d", strat, len(got), len(ref))
		}
		for i := range ref {
			if math.Abs(got[i]-ref[i]) > 1e-12 {
				t.Fatalf("%v diverges from LayoutCA at %d: %v vs %v", strat, i, got[i], ref[i])
			}
		}
	}
}

func TestStrategyCostShapes(t *testing.T) {
	dom := [3]int{16, 16, 16}
	_, ca := runStrategy(t, LayoutCA, dom, 2)
	_, um := runStrategy(t, LayoutUM, dom, 2)
	_, mm := runStrategy(t, MemMapUM, dom, 2)
	_, ty := runStrategy(t, TypesUM, dom, 2)

	// Message counts per exchange: Layout 42, MemMap/Types 26.
	if ca.Msgs != 84 || um.Msgs != 84 {
		t.Errorf("layout msgs = %d/%d, want 84", ca.Msgs, um.Msgs)
	}
	if mm.Msgs != 52 || ty.Msgs != 52 {
		t.Errorf("per-neighbor msgs = %d/%d, want 52", mm.Msgs, ty.Msgs)
	}
	// CUDA-aware pays no faults; page-aligned MemMap pays none either (the
	// Figure 15 effect); unaligned UM strategies do.
	if ca.Fault != 0 {
		t.Error("LayoutCA charged faults")
	}
	if mm.Fault != 0 {
		t.Errorf("page-aligned MemMapUM charged faults (%v)", mm.Fault)
	}
	if um.Fault <= 0 || ty.Fault <= 0 {
		t.Error("unaligned UM strategies must fault")
	}
	// MemMap padding inflates wire bytes beyond data bytes (4³ bricks are
	// sub-page); Layout does not pad.
	if mm.Wire <= mm.Data {
		t.Errorf("MemMap wire %d not padded beyond data %d", mm.Wire, mm.Data)
	}
	if ca.Wire != ca.Data {
		t.Errorf("LayoutCA padded: wire %d data %d", ca.Wire, ca.Data)
	}
	// Types pays the datatype engine; others don't.
	if ty.Engine <= 0 || ca.Engine != 0 || mm.Engine != 0 {
		t.Error("engine cost attribution wrong")
	}
	// Overall modeled comm: Types slowest, CA fastest of the four (small
	// subdomain, paper Figure 14).
	if !(ty.Total() > um.Total() && ty.Total() > mm.Total()) {
		t.Errorf("Types (%v) should be slowest (um %v, mm %v)", ty.Total(), um.Total(), mm.Total())
	}
	_ = um
	if ca.Total() >= ty.Total() {
		t.Errorf("CA (%v) should beat Types (%v)", ca.Total(), ty.Total())
	}
}

func TestNetworkFloor(t *testing.T) {
	dec, err := core.NewBrickDecomp(core.Shape{4, 4, 4}, [3]int{16, 16, 16}, 4, 2, layout.Surface3D())
	if err != nil {
		t.Fatal(err)
	}
	mach := netmodel.SummitV100()
	floor := NetworkFloor(dec, mach, netmodel.Network)
	if floor <= 0 {
		t.Fatal("floor not positive")
	}
	// The floor must not exceed the modeled cost of the 42-message Layout
	// plan on the same link (fewer messages, same bytes).
	var layoutCost time.Duration
	chunkBytes := 8 * dec.Fields() * dec.Shape().Vol()
	for _, m := range dec.SendMessages() {
		layoutCost += mach.Cost(netmodel.Network, m.Span.NBricks*chunkBytes)
	}
	if floor > layoutCost {
		t.Errorf("floor %v exceeds layout cost %v", floor, layoutCost)
	}
}

func TestGhostExpansionOnGPUSim(t *testing.T) {
	// Exchange every 4 steps with shrinking margins must equal exchanging
	// every step (margin 0): run LayoutCA both ways and compare.
	dom := [3]int{8, 8, 8}
	const ghost = 4
	st := stencil.Star7()
	run := func(expand bool) []float64 {
		var out []float64
		w := mpi.NewWorld(8)
		w.Run(func(c *mpi.Comm) {
			cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
			sim, err := NewSim(cart, Config{
				Strategy: LayoutCA, Dom: dom, Ghost: ghost,
				Shape: core.Shape{4, 4, 4}, Order: layout.Surface3D(),
				Machine: netmodel.SummitV100(), Spec: V100(), Stencil: st,
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer sim.Close()
			co := cart.MyCoords()
			sim.Init(func(x, y, z int) float64 {
				return float64((co[2]*dom[0]+x)*31+(co[1]*dom[1]+y)*17) * 0.001 * float64(co[0]*dom[2]+z+1)
			})
			const steps = 4
			for s := 0; s < steps; s++ {
				if expand {
					if s%4 == 0 {
						sim.Exchange()
					}
					sim.Compute(ghost - 1 - s%4)
				} else {
					sim.Exchange()
					sim.Compute(0)
				}
			}
			if c.Rank() == 0 {
				for z := 0; z < dom[2]; z++ {
					for y := 0; y < dom[1]; y++ {
						for x := 0; x < dom[0]; x++ {
							out = append(out, sim.Elem(x+ghost, y+ghost, z+ghost))
						}
					}
				}
			}
		})
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("ghost expansion diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStagedArrayStrategy(t *testing.T) {
	dom := [3]int{12, 12, 12}
	ref, _ := runStrategy(t, LayoutCA, dom, 3)
	got, cost := runStrategy(t, StagedArray, dom, 3)
	for i := range ref {
		if math.Abs(got[i]-ref[i]) > 1e-12 {
			t.Fatalf("Staged diverges at %d: %v vs %v", i, got[i], ref[i])
		}
	}
	if cost.Msgs != 3*26 {
		t.Errorf("Staged messages = %d, want 78", cost.Msgs)
	}
	if cost.Fault <= 0 {
		t.Error("staging charged no host-transfer time")
	}
	if StagedArray.String() != "Staged" {
		t.Error("name")
	}
	// At a volume where staging matters (32³ per rank: two whole-array
	// transfers per exchange plus real host packing), Staged must cost more
	// than CUDA-Aware — the paper's motivation for CA/UM. (At tiny domains
	// the 42 GPUDirect latencies can exceed the staging cost, which is why
	// this comparison uses a realistic size.)
	big := [3]int{32, 32, 32}
	_, staged := runStrategy(t, StagedArray, big, 2)
	_, ca := runStrategy(t, LayoutCA, big, 2)
	if staged.Total() <= ca.Total() {
		t.Errorf("Staged (%v) should cost more than LayoutCA (%v) at 32³", staged.Total(), ca.Total())
	}
}
