package grid

import (
	"time"

	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
)

// Exchange tags: one message per neighbor per exchange, keyed by the
// sender's direction index so tags stay unique on tiny periodic grids.
func gridTag(senderDir layout.Set) int {
	for i, r := range layout.Regions(3) {
		if r == senderDir {
			return i
		}
	}
	panic("grid: not a 3D direction")
}

// PackTimings records where an exchange spent its time, mirroring the
// artifact's pack/call/wait decomposition.
type PackTimings struct {
	Pack time.Duration // packing + unpacking copies
	Call time.Duration // posting sends/receives
	Wait time.Duration // waiting for completion
}

// PackExchanger performs the conventional packed ghost-zone exchange: pack
// each neighbor's surface region into a buffer, send, receive, unpack — one
// message per neighbor, and every byte copied twice on-node (the red
// "Packing" bars of Figure 1).
type PackExchanger struct {
	g     *Grid
	comm  *mpi.Comm
	rank  map[layout.Set]int
	sbuf  map[layout.Set][]float64
	rbuf  map[layout.Set][]float64
	reqs  []*mpi.Request
	rreqs []recvPending
}

type recvPending struct {
	dir layout.Set
	req *mpi.Request
}

func neighborRanks(cart *mpi.Cart) map[layout.Set]int {
	m := make(map[layout.Set]int, 26)
	for _, s := range layout.Regions(3) {
		m[s] = cart.Neighbor([]int{s.Axis(3), s.Axis(2), s.Axis(1)})
	}
	return m
}

// NewPackExchanger allocates persistent pack buffers for every neighbor.
func NewPackExchanger(g *Grid, cart *mpi.Cart) *PackExchanger {
	e := &PackExchanger{
		g:    g,
		comm: cart.Comm(),
		rank: neighborRanks(cart),
		sbuf: map[layout.Set][]float64{},
		rbuf: map[layout.Set][]float64{},
	}
	for _, s := range layout.Regions(3) {
		lo, hi := g.SendRegion(s)
		e.sbuf[s] = make([]float64, RegionCount(lo, hi))
		lo, hi = g.RecvRegion(s)
		e.rbuf[s] = make([]float64, RegionCount(lo, hi))
	}
	return e
}

// Begin posts receives, packs all surface regions, and posts sends. The
// overlapped (YASK-OL) pattern computes the interior between Begin and End.
func (e *PackExchanger) Begin(t *PackTimings) {
	start := time.Now()
	for _, s := range layout.Regions(3) {
		src := e.rank[s]
		if src < 0 {
			continue
		}
		e.rreqs = append(e.rreqs, recvPending{dir: s, req: e.comm.Irecv(src, gridTag(s.Opposite()), e.rbuf[s])})
	}
	call := time.Since(start)

	start = time.Now()
	for _, s := range layout.Regions(3) {
		if e.rank[s] < 0 {
			continue
		}
		lo, hi := e.g.SendRegion(s)
		e.g.Pack(lo, hi, e.sbuf[s])
	}
	pack := time.Since(start)

	start = time.Now()
	for _, s := range layout.Regions(3) {
		dst := e.rank[s]
		if dst < 0 {
			continue
		}
		e.reqs = append(e.reqs, e.comm.Isend(dst, gridTag(s), e.sbuf[s]))
	}
	call += time.Since(start)
	if t != nil {
		t.Pack += pack
		t.Call += call
	}
}

// End waits for completion and unpacks ghost regions.
func (e *PackExchanger) End(t *PackTimings) {
	start := time.Now()
	for _, r := range e.rreqs {
		r.req.Wait()
	}
	mpi.Waitall(e.reqs)
	wait := time.Since(start)

	start = time.Now()
	for _, r := range e.rreqs {
		lo, hi := e.g.RecvRegion(r.dir)
		e.g.Unpack(lo, hi, e.rbuf[r.dir])
	}
	pack := time.Since(start)
	e.reqs = e.reqs[:0]
	e.rreqs = e.rreqs[:0]
	if t != nil {
		t.Wait += wait
		t.Pack += pack
	}
}

// Exchange runs a full non-overlapped exchange.
func (e *PackExchanger) Exchange(t *PackTimings) {
	e.Begin(t)
	e.End(t)
}

// TypesExchanger performs the exchange with MPI derived datatypes: no
// application-level packing, but the datatype engine walks every element
// through an interpretive odometer loop on both ends (the paper's
// MPI_Types baseline, up to 460× slower than MemMap).
type TypesExchanger struct {
	g     *Grid
	comm  *mpi.Comm
	rank  map[layout.Set]int
	types map[layout.Set]sendRecvTypes
	sbuf  map[layout.Set][]float64
	rbuf  map[layout.Set][]float64
	reqs  []*mpi.Request
	rreqs []recvPending
	// Elems counts elements processed by the datatype engine, for modeled
	// per-element cost accounting.
	Elems int64
}

type sendRecvTypes struct {
	send, recv mpi.Subarray
}

// NewTypesExchanger precomputes subarray datatypes for every neighbor.
func NewTypesExchanger(g *Grid, cart *mpi.Cart) *TypesExchanger {
	e := &TypesExchanger{
		g:     g,
		comm:  cart.Comm(),
		rank:  neighborRanks(cart),
		types: map[layout.Set]sendRecvTypes{},
		sbuf:  map[layout.Set][]float64{},
		rbuf:  map[layout.Set][]float64{},
	}
	for _, s := range layout.Regions(3) {
		slo, shi := g.SendRegion(s)
		rlo, rhi := g.RecvRegion(s)
		e.types[s] = sendRecvTypes{send: g.Subarray(slo, shi), recv: g.Subarray(rlo, rhi)}
		e.sbuf[s] = make([]float64, RegionCount(slo, shi))
		e.rbuf[s] = make([]float64, RegionCount(rlo, rhi))
	}
	return e
}

// Exchange runs one derived-datatype exchange. Pack time here is the
// datatype engine's element walk, charged as Pack to mirror the artifact's
// accounting (the application itself performs no packing).
func (e *TypesExchanger) Exchange(t *PackTimings) {
	e.Begin(t)
	e.End(t)
}

// Begin posts receives, runs the send-side datatype walk into staging
// buffers, and posts sends. The overlapped pattern computes the interior
// between Begin and End: in-flight messages touch only the staging buffers,
// so concurrent interior computation over the grid is safe.
func (e *TypesExchanger) Begin(t *PackTimings) {
	start := time.Now()
	for _, s := range layout.Regions(3) {
		src := e.rank[s]
		if src < 0 {
			continue
		}
		e.rreqs = append(e.rreqs, recvPending{dir: s, req: e.comm.Irecv(src, gridTag(s.Opposite()), e.rbuf[s])})
	}
	call := time.Since(start)

	// Datatype engine packs with the interpretive walker.
	start = time.Now()
	for _, s := range layout.Regions(3) {
		if e.rank[s] < 0 {
			continue
		}
		dt := e.types[s].send
		dt.Pack(e.g.Data, e.sbuf[s])
		e.Elems += int64(dt.Count())
	}
	pack := time.Since(start)

	start = time.Now()
	for _, s := range layout.Regions(3) {
		dst := e.rank[s]
		if dst < 0 {
			continue
		}
		e.reqs = append(e.reqs, e.comm.Isend(dst, gridTag(s), e.sbuf[s]))
	}
	call += time.Since(start)
	if t != nil {
		t.Pack += pack
		t.Call += call
	}
}

// End waits for completion and runs the receive-side datatype walk into the
// ghost regions.
func (e *TypesExchanger) End(t *PackTimings) {
	start := time.Now()
	for _, r := range e.rreqs {
		r.req.Wait()
	}
	mpi.Waitall(e.reqs)
	wait := time.Since(start)

	start = time.Now()
	for _, r := range e.rreqs {
		dt := e.types[r.dir].recv
		dt.Unpack(e.rbuf[r.dir], e.g.Data)
		e.Elems += int64(dt.Count())
	}
	pack := time.Since(start)
	e.reqs = e.reqs[:0]
	e.rreqs = e.rreqs[:0]
	if t != nil {
		t.Pack += pack
		t.Wait += wait
	}
}
