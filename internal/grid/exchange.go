package grid

import (
	"time"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
)

// Exchange tags: one message per neighbor per exchange, keyed by the
// sender's direction index so tags stay unique on tiny periodic grids.
func gridTag(senderDir layout.Set) int {
	for i, r := range layout.Regions(3) {
		if r == senderDir {
			return i
		}
	}
	panic("grid: not a 3D direction")
}

// PackTimings records where an exchange spent its time, mirroring the
// artifact's pack/call/wait decomposition. It is the same Pack/Call/Wait
// split the unified Exchanger lifecycle reports through Timings().
type PackTimings = core.PhaseTimings

// PackExchanger performs the conventional packed ghost-zone exchange: pack
// each neighbor's surface region into a buffer, send, receive, unpack — one
// message per neighbor, and every byte copied twice on-node (the red
// "Packing" bars of Figure 1).
//
// The staging buffers are fixed at construction, so with persistent plans
// (the default) the wire half of every step reuses pre-matched requests;
// the pack/unpack copies remain — they are what this baseline measures.
type PackExchanger struct {
	core.PlanBase
	g          *Grid
	comm       *mpi.Comm
	rank       map[layout.Set]int
	sbuf       map[layout.Set][]float64
	rbuf       map[layout.Set][]float64
	reqs       []*mpi.Request
	rreqs      []recvPending
	persistent bool
	precvs     []*mpi.Request
	psends     []*mpi.Request
	pall       []*mpi.Request
}

var _ core.Exchanger = (*PackExchanger)(nil)

type recvPending struct {
	dir layout.Set
	req *mpi.Request
}

func neighborRanks(cart *mpi.Cart) map[layout.Set]int {
	m := make(map[layout.Set]int, 26)
	for _, s := range layout.Regions(3) {
		m[s] = cart.Neighbor([]int{s.Axis(3), s.Axis(2), s.Axis(1)})
	}
	return m
}

// NewPackExchanger allocates fixed pack buffers for every neighbor and
// compiles the exchange plan.
func NewPackExchanger(g *Grid, cart *mpi.Cart, opts ...core.PlanOption) *PackExchanger {
	e := &PackExchanger{
		g:    g,
		comm: cart.Comm(),
		rank: neighborRanks(cart),
		sbuf: map[layout.Set][]float64{},
		rbuf: map[layout.Set][]float64{},
	}
	for _, s := range layout.Regions(3) {
		lo, hi := g.SendRegion(s)
		e.sbuf[s] = make([]float64, RegionCount(lo, hi))
		lo, hi = g.RecvRegion(s)
		e.rbuf[s] = make([]float64, RegionCount(lo, hi))
	}
	e.persistent = compilePlan(&e.PlanBase, "pack", e.comm, e.rank, e.sbuf, e.rbuf,
		&e.precvs, &e.psends, &e.pall, opts)
	return e
}

// compilePlan builds the per-neighbor staged-buffer plan shared by the
// pack and derived-datatype exchangers: one receive and one send per
// neighbor over fixed staging buffers, in the deterministic Regions order
// (receives first, then sends — the same program order on every rank, so
// persistent endpoints pair deterministically). Returns whether the plan
// is persistent.
func compilePlan(base *core.PlanBase, variant string, comm *mpi.Comm, rank map[layout.Set]int,
	sbuf, rbuf map[layout.Set][]float64, precvs, psends, pall *[]*mpi.Request, opts []core.PlanOption) bool {
	persistent := core.ResolvePlanOptions(opts)
	plan := core.ExchangePlan{Variant: variant, Persistent: persistent}
	for _, s := range layout.Regions(3) {
		src := rank[s]
		if src < 0 {
			continue
		}
		tag := gridTag(s.Opposite())
		plan.Recvs = append(plan.Recvs, core.PlanMsg{Peer: src, Tag: tag, Bytes: int64(8 * len(rbuf[s]))})
		if persistent {
			*precvs = append(*precvs, comm.RecvInit(src, tag, rbuf[s]))
		}
	}
	for _, s := range layout.Regions(3) {
		dst := rank[s]
		if dst < 0 {
			continue
		}
		tag := gridTag(s)
		plan.Sends = append(plan.Sends, core.PlanMsg{Peer: dst, Tag: tag, Bytes: int64(8 * len(sbuf[s]))})
		if persistent {
			*psends = append(*psends, comm.SendInit(dst, tag, sbuf[s]))
		}
	}
	*pall = make([]*mpi.Request, 0, len(*precvs)+len(*psends))
	*pall = append(append(*pall, *precvs...), *psends...)
	base.SetPlan(plan)
	return persistent
}

// Begin posts receives, packs all surface regions, and posts sends. The
// overlapped (YASK-OL) pattern computes the interior between Begin and End.
func (e *PackExchanger) Begin(t *PackTimings) {
	start := time.Now()
	for _, s := range layout.Regions(3) {
		src := e.rank[s]
		if src < 0 {
			continue
		}
		e.rreqs = append(e.rreqs, recvPending{dir: s, req: e.comm.Irecv(src, gridTag(s.Opposite()), e.rbuf[s])})
	}
	call := time.Since(start)

	start = time.Now()
	for _, s := range layout.Regions(3) {
		if e.rank[s] < 0 {
			continue
		}
		lo, hi := e.g.SendRegion(s)
		e.g.Pack(lo, hi, e.sbuf[s])
	}
	pack := time.Since(start)

	start = time.Now()
	for _, s := range layout.Regions(3) {
		dst := e.rank[s]
		if dst < 0 {
			continue
		}
		e.reqs = append(e.reqs, e.comm.Isend(dst, gridTag(s), e.sbuf[s]))
	}
	call += time.Since(start)
	if t != nil {
		t.Pack += pack
		t.Call += call
	}
}

// End waits for completion and unpacks ghost regions.
func (e *PackExchanger) End(t *PackTimings) {
	start := time.Now()
	for _, r := range e.rreqs {
		r.req.Wait()
	}
	mpi.Waitall(e.reqs)
	wait := time.Since(start)

	start = time.Now()
	for _, r := range e.rreqs {
		lo, hi := e.g.RecvRegion(r.dir)
		e.g.Unpack(lo, hi, e.rbuf[r.dir])
	}
	pack := time.Since(start)
	e.reqs = e.reqs[:0]
	e.rreqs = e.rreqs[:0]
	if t != nil {
		t.Wait += wait
		t.Pack += pack
	}
}

// Exchange runs a full non-overlapped exchange.
func (e *PackExchanger) Exchange(t *PackTimings) {
	e.Begin(t)
	e.End(t)
}

// Start posts the compiled plan's receives, packs every surface region
// into its fixed staging buffer, and posts the sends. Returns the number
// of sends posted. Overlapping interior compute between Start and
// Complete is safe: in-flight messages touch only the staging buffers.
func (e *PackExchanger) Start() int {
	if !e.persistent {
		var t PackTimings
		e.Begin(&t)
		e.AddPack(t.Pack)
		e.AddCall(t.Call)
		e.RecordStart()
		return len(e.reqs)
	}
	t0 := time.Now()
	mpi.Startall(e.precvs)
	call := time.Since(t0)

	t0 = time.Now()
	for _, s := range layout.Regions(3) {
		if e.rank[s] < 0 {
			continue
		}
		lo, hi := e.g.SendRegion(s)
		e.g.Pack(lo, hi, e.sbuf[s])
	}
	e.AddPack(time.Since(t0))

	t0 = time.Now()
	mpi.Startall(e.psends)
	e.AddCall(call + time.Since(t0))
	e.RecordStart()
	return len(e.psends)
}

// Complete waits for the in-flight exchange and unpacks ghost regions.
func (e *PackExchanger) Complete() {
	if !e.persistent {
		var t PackTimings
		e.End(&t)
		e.AddPack(t.Pack)
		e.AddWait(t.Wait)
		return
	}
	t0 := time.Now()
	mpi.Waitall(e.pall)
	e.AddWait(time.Since(t0))

	t0 = time.Now()
	for _, s := range layout.Regions(3) {
		if e.rank[s] < 0 {
			continue
		}
		lo, hi := e.g.RecvRegion(s)
		e.g.Unpack(lo, hi, e.rbuf[s])
	}
	e.AddPack(time.Since(t0))
}

// Close releases the persistent endpoints.
func (e *PackExchanger) Close() error {
	for _, r := range e.pall {
		r.Free()
	}
	e.precvs, e.psends, e.pall = nil, nil, nil
	return nil
}

// TypesExchanger performs the exchange with MPI derived datatypes: no
// application-level packing, but the datatype engine walks every element
// through an interpretive odometer loop on both ends (the paper's
// MPI_Types baseline, up to 460× slower than MemMap).
type TypesExchanger struct {
	core.PlanBase
	g     *Grid
	comm  *mpi.Comm
	rank  map[layout.Set]int
	types map[layout.Set]sendRecvTypes
	sbuf  map[layout.Set][]float64
	rbuf  map[layout.Set][]float64
	reqs  []*mpi.Request
	rreqs []recvPending
	// Elems counts elements processed by the datatype engine, for modeled
	// per-element cost accounting.
	Elems      int64
	persistent bool
	precvs     []*mpi.Request
	psends     []*mpi.Request
	pall       []*mpi.Request
}

var _ core.Exchanger = (*TypesExchanger)(nil)

type sendRecvTypes struct {
	send, recv mpi.Subarray
}

// NewTypesExchanger precomputes subarray datatypes for every neighbor and
// compiles the exchange plan over the fixed staging buffers.
func NewTypesExchanger(g *Grid, cart *mpi.Cart, opts ...core.PlanOption) *TypesExchanger {
	e := &TypesExchanger{
		g:     g,
		comm:  cart.Comm(),
		rank:  neighborRanks(cart),
		types: map[layout.Set]sendRecvTypes{},
		sbuf:  map[layout.Set][]float64{},
		rbuf:  map[layout.Set][]float64{},
	}
	for _, s := range layout.Regions(3) {
		slo, shi := g.SendRegion(s)
		rlo, rhi := g.RecvRegion(s)
		e.types[s] = sendRecvTypes{send: g.Subarray(slo, shi), recv: g.Subarray(rlo, rhi)}
		e.sbuf[s] = make([]float64, RegionCount(slo, shi))
		e.rbuf[s] = make([]float64, RegionCount(rlo, rhi))
	}
	e.persistent = compilePlan(&e.PlanBase, "types", e.comm, e.rank, e.sbuf, e.rbuf,
		&e.precvs, &e.psends, &e.pall, opts)
	return e
}

// Exchange runs one derived-datatype exchange. Pack time here is the
// datatype engine's element walk, charged as Pack to mirror the artifact's
// accounting (the application itself performs no packing).
func (e *TypesExchanger) Exchange(t *PackTimings) {
	e.Begin(t)
	e.End(t)
}

// Begin posts receives, runs the send-side datatype walk into staging
// buffers, and posts sends. The overlapped pattern computes the interior
// between Begin and End: in-flight messages touch only the staging buffers,
// so concurrent interior computation over the grid is safe.
func (e *TypesExchanger) Begin(t *PackTimings) {
	start := time.Now()
	for _, s := range layout.Regions(3) {
		src := e.rank[s]
		if src < 0 {
			continue
		}
		e.rreqs = append(e.rreqs, recvPending{dir: s, req: e.comm.Irecv(src, gridTag(s.Opposite()), e.rbuf[s])})
	}
	call := time.Since(start)

	// Datatype engine packs with the interpretive walker.
	start = time.Now()
	for _, s := range layout.Regions(3) {
		if e.rank[s] < 0 {
			continue
		}
		dt := e.types[s].send
		dt.Pack(e.g.Data, e.sbuf[s])
		e.Elems += int64(dt.Count())
	}
	pack := time.Since(start)

	start = time.Now()
	for _, s := range layout.Regions(3) {
		dst := e.rank[s]
		if dst < 0 {
			continue
		}
		e.reqs = append(e.reqs, e.comm.Isend(dst, gridTag(s), e.sbuf[s]))
	}
	call += time.Since(start)
	if t != nil {
		t.Pack += pack
		t.Call += call
	}
}

// End waits for completion and runs the receive-side datatype walk into the
// ghost regions.
func (e *TypesExchanger) End(t *PackTimings) {
	start := time.Now()
	for _, r := range e.rreqs {
		r.req.Wait()
	}
	mpi.Waitall(e.reqs)
	wait := time.Since(start)

	start = time.Now()
	for _, r := range e.rreqs {
		dt := e.types[r.dir].recv
		dt.Unpack(e.rbuf[r.dir], e.g.Data)
		e.Elems += int64(dt.Count())
	}
	pack := time.Since(start)
	e.reqs = e.reqs[:0]
	e.rreqs = e.rreqs[:0]
	if t != nil {
		t.Pack += pack
		t.Wait += wait
	}
}

// Start posts the compiled plan's receives, runs the send-side datatype
// walk into the fixed staging buffers (charged as Pack — the interpretive
// element walk is this baseline's cost), and posts the sends. Returns the
// number of sends posted.
func (e *TypesExchanger) Start() int {
	if !e.persistent {
		var t PackTimings
		e.Begin(&t)
		e.AddPack(t.Pack)
		e.AddCall(t.Call)
		e.RecordStart()
		return len(e.reqs)
	}
	t0 := time.Now()
	mpi.Startall(e.precvs)
	call := time.Since(t0)

	t0 = time.Now()
	for _, s := range layout.Regions(3) {
		if e.rank[s] < 0 {
			continue
		}
		dt := e.types[s].send
		dt.Pack(e.g.Data, e.sbuf[s])
		e.Elems += int64(dt.Count())
	}
	e.AddPack(time.Since(t0))

	t0 = time.Now()
	mpi.Startall(e.psends)
	e.AddCall(call + time.Since(t0))
	e.RecordStart()
	return len(e.psends)
}

// Complete waits for the in-flight exchange and runs the receive-side
// datatype walk into the ghost regions.
func (e *TypesExchanger) Complete() {
	if !e.persistent {
		var t PackTimings
		e.End(&t)
		e.AddPack(t.Pack)
		e.AddWait(t.Wait)
		return
	}
	t0 := time.Now()
	mpi.Waitall(e.pall)
	e.AddWait(time.Since(t0))

	t0 = time.Now()
	for _, s := range layout.Regions(3) {
		if e.rank[s] < 0 {
			continue
		}
		dt := e.types[s].recv
		dt.Unpack(e.rbuf[s], e.g.Data)
		e.Elems += int64(dt.Count())
	}
	e.AddPack(time.Since(t0))
}

// Close releases the persistent endpoints.
func (e *TypesExchanger) Close() error {
	for _, r := range e.pall {
		r.Free()
	}
	e.precvs, e.psends, e.pall = nil, nil, nil
	return nil
}
