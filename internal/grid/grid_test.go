package grid

import (
	"testing"

	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
)

func TestNewGrid(t *testing.T) {
	g := New([3]int{8, 4, 2}, 2)
	if g.Ext != [3]int{12, 8, 6} {
		t.Errorf("ext = %v", g.Ext)
	}
	if len(g.Data) != 12*8*6 {
		t.Errorf("len = %d", len(g.Data))
	}
	g.Set(3, 2, 1, 5)
	if g.At(3, 2, 1) != 5 {
		t.Error("at/set")
	}
	if g.Idx(1, 0, 0) != 1 || g.Idx(0, 1, 0) != 12 || g.Idx(0, 0, 1) != 96 {
		t.Error("i must be fastest")
	}
}

func TestNewGridPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New([3]int{0, 4, 4}, 1) },
		func() { New([3]int{4, 4, 4}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestRegions(t *testing.T) {
	g := New([3]int{8, 8, 8}, 2)
	// Face send region +i: last ghost-width slab of the domain, full extent
	// on other axes.
	lo, hi := g.SendRegion(layout.FromDirs(1))
	if lo != [3]int{8, 2, 2} || hi != [3]int{10, 10, 10} {
		t.Errorf("send +i region = %v..%v", lo, hi)
	}
	// Face recv region +i: the ghost slab beyond the domain.
	lo, hi = g.RecvRegion(layout.FromDirs(1))
	if lo != [3]int{10, 2, 2} || hi != [3]int{12, 10, 10} {
		t.Errorf("recv +i region = %v..%v", lo, hi)
	}
	// Corner send region: ghost³ cube at the domain corner.
	lo, hi = g.SendRegion(layout.FromDirs(-1, -2, -3))
	if lo != [3]int{2, 2, 2} || hi != [3]int{4, 4, 4} {
		t.Errorf("corner send = %v..%v", lo, hi)
	}
	if RegionCount(lo, hi) != 8 {
		t.Error("corner count")
	}
	// Recv regions of distinct directions are disjoint; send regions of a
	// face and its adjacent corner overlap (standard packed exchange).
	rlo1, rhi1 := g.RecvRegion(layout.FromDirs(-1))
	rlo2, rhi2 := g.RecvRegion(layout.FromDirs(-1, -2))
	if overlap(rlo1, rhi1, rlo2, rhi2) {
		t.Error("recv regions overlap")
	}
	slo1, shi1 := g.SendRegion(layout.FromDirs(-1))
	slo2, shi2 := g.SendRegion(layout.FromDirs(-1, -2))
	if !overlap(slo1, shi1, slo2, shi2) {
		t.Error("send face and corner should overlap")
	}
}

func overlap(alo, ahi, blo, bhi [3]int) bool {
	for a := 0; a < 3; a++ {
		if ahi[a] <= blo[a] || bhi[a] <= alo[a] {
			return false
		}
	}
	return true
}

func TestPackUnpackRoundTrip(t *testing.T) {
	g := New([3]int{8, 8, 8}, 2)
	for i := range g.Data {
		g.Data[i] = float64(i)
	}
	lo, hi := g.SendRegion(layout.FromDirs(1, -2))
	buf := make([]float64, RegionCount(lo, hi))
	if n := g.Pack(lo, hi, buf); n != len(buf) {
		t.Fatalf("packed %d, want %d", n, len(buf))
	}
	// Clear the region, unpack, verify restoration.
	g2 := New([3]int{8, 8, 8}, 2)
	g2.Unpack(lo, hi, buf)
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			for i := lo[0]; i < hi[0]; i++ {
				if g2.At(i, j, k) != g.At(i, j, k) {
					t.Fatalf("(%d,%d,%d) mismatch", i, j, k)
				}
			}
		}
	}
	// Outside untouched.
	if g2.At(0, 0, 0) != 0 {
		t.Error("unpack leaked")
	}
}

func TestPackMatchesSubarray(t *testing.T) {
	g := New([3]int{8, 6, 4}, 2)
	for i := range g.Data {
		g.Data[i] = float64(3*i + 1)
	}
	for _, s := range layout.Regions(3) {
		lo, hi := g.SendRegion(s)
		a := make([]float64, RegionCount(lo, hi))
		b := make([]float64, RegionCount(lo, hi))
		g.Pack(lo, hi, a)
		g.Subarray(lo, hi).Pack(g.Data, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("region %v element %d: pack %v vs subarray %v", s, i, a[i], b[i])
			}
		}
	}
}

func gval(x, y, z int) float64 { return float64(z)*1e6 + float64(y)*1e3 + float64(x) }

// verifyGridExchange checks full periodic ghost correctness for either
// exchanger kind ("pack", "overlap", or "types").
func verifyGridExchange(t *testing.T, kind string) {
	t.Helper()
	dom := [3]int{8, 8, 8}
	const ghost = 2
	procs := [3]int{2, 2, 2}
	global := [3]int{16, 16, 16}
	w := mpi.NewWorld(8)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{procs[2], procs[1], procs[0]}, []bool{true, true, true})
		co := cart.MyCoords()
		origin := [3]int{co[2] * dom[0], co[1] * dom[1], co[0] * dom[2]}
		g := New(dom, ghost)
		for z := 0; z < dom[2]; z++ {
			for y := 0; y < dom[1]; y++ {
				for x := 0; x < dom[0]; x++ {
					g.Set(x+ghost, y+ghost, z+ghost, gval(origin[0]+x, origin[1]+y, origin[2]+z))
				}
			}
		}
		var tm PackTimings
		switch kind {
		case "pack":
			NewPackExchanger(g, cart).Exchange(&tm)
		case "overlap":
			e := NewPackExchanger(g, cart)
			e.Begin(&tm)
			e.End(&tm)
		case "types":
			e := NewTypesExchanger(g, cart)
			e.Exchange(&tm)
			if e.Elems <= 0 {
				t.Error("datatype engine processed no elements")
			}
		}
		if tm.Pack < 0 || tm.Call < 0 || tm.Wait < 0 {
			t.Error("negative timings")
		}
		for z := 0; z < g.Ext[2]; z++ {
			for y := 0; y < g.Ext[1]; y++ {
				for x := 0; x < g.Ext[0]; x++ {
					want := gval(
						mod(origin[0]+x-ghost, global[0]),
						mod(origin[1]+y-ghost, global[1]),
						mod(origin[2]+z-ghost, global[2]))
					if got := g.At(x, y, z); got != want {
						t.Errorf("rank %d (%d,%d,%d): %v != %v", c.Rank(), x, y, z, got, want)
						return
					}
				}
			}
		}
	})
}

func mod(a, n int) int { return ((a % n) + n) % n }

func TestPackExchange(t *testing.T)    { verifyGridExchange(t, "pack") }
func TestOverlapExchange(t *testing.T) { verifyGridExchange(t, "overlap") }
func TestTypesExchange(t *testing.T)   { verifyGridExchange(t, "types") }

func TestPackExchangeMessageCount(t *testing.T) {
	// One message per neighbor: 26 sends per rank.
	w := mpi.NewWorld(8)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		g := New([3]int{8, 8, 8}, 2)
		e := NewPackExchanger(g, cart)
		c.TrafficSnapshot() // drain setup traffic
		e.Exchange(nil)
		if tr := c.TrafficSnapshot(); tr.SentMsgs != 26 {
			t.Errorf("sent %d messages, want 26", tr.SentMsgs)
		}
	})
}

func TestSingleRankPeriodicGridExchange(t *testing.T) {
	w := mpi.NewWorld(1)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{1, 1, 1}, []bool{true, true, true})
		g := New([3]int{8, 8, 8}, 2)
		for z := 0; z < 8; z++ {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					g.Set(x+2, y+2, z+2, gval(x, y, z))
				}
			}
		}
		NewPackExchanger(g, cart).Exchange(nil)
		// Ghost at (-1) wraps to domain element 7.
		if got, want := g.At(1, 2, 2), gval(7, 0, 0); got != want {
			t.Errorf("wrap ghost = %v, want %v", got, want)
		}
	})
}

func TestPackTimingsAccounting(t *testing.T) {
	w := mpi.NewWorld(8)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		g := New([3]int{8, 8, 8}, 2)
		e := NewPackExchanger(g, cart)
		var tm PackTimings
		e.Exchange(&tm)
		if tm.Pack <= 0 {
			t.Error("pack time not recorded")
		}
		if tm.Call <= 0 {
			t.Error("call time not recorded")
		}
		if tm.Wait < 0 {
			t.Error("negative wait")
		}
	})
}

func TestPackExchangerReusable(t *testing.T) {
	// Begin/End cycles must be repeatable with stable results.
	w := mpi.NewWorld(8)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		g := New([3]int{8, 8, 8}, 2)
		co := cart.MyCoords()
		for z := 0; z < 8; z++ {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					g.Set(x+2, y+2, z+2, gval(co[2]*8+x, co[1]*8+y, co[0]*8+z))
				}
			}
		}
		e := NewPackExchanger(g, cart)
		e.Begin(nil)
		e.End(nil)
		snap := append([]float64(nil), g.Data...)
		for i := 0; i < 3; i++ {
			e.Begin(nil)
			e.End(nil)
		}
		for i := range snap {
			if g.Data[i] != snap[i] {
				t.Fatalf("element %d changed across exchanges", i)
			}
		}
	})
}

func TestTypesExchangerElemsAccumulate(t *testing.T) {
	w := mpi.NewWorld(8)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		g := New([3]int{8, 8, 8}, 2)
		e := NewTypesExchanger(g, cart)
		e.Exchange(nil)
		first := e.Elems
		e.Exchange(nil)
		if e.Elems != 2*first || first <= 0 {
			t.Errorf("engine elems: first %d, after second %d", first, e.Elems)
		}
	})
}

func TestSubarrayCountsMatchRegions(t *testing.T) {
	g := New([3]int{8, 6, 4}, 2)
	for _, s := range layout.Regions(3) {
		lo, hi := g.SendRegion(s)
		if got := g.Subarray(lo, hi).Count(); got != RegionCount(lo, hi) {
			t.Errorf("region %v: subarray %d, count %d", s, got, RegionCount(lo, hi))
		}
	}
}
