// Package grid implements the conventional lexicographic-array
// representation of a stencil subdomain, with the packing-based ghost-zone
// exchanges the paper uses as baselines: an explicitly packed exchange in
// the style of YASK (optionally overlapping communication with computation)
// and an MPI derived-datatype exchange. Both move every communicated byte
// through extra on-node copies — the data movement the brick layout
// eliminates.
package grid

import (
	"fmt"

	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
)

// Grid is a subdomain stored lexicographically (i fastest) with a ghost
// margin of width Ghost on every side.
type Grid struct {
	Dom   [3]int // domain extent per axis (i,j,k)
	Ghost int
	Ext   [3]int // Dom + 2*Ghost
	Data  []float64
}

// New allocates a zeroed grid.
func New(dom [3]int, ghost int) *Grid {
	if ghost < 0 {
		panic("grid: negative ghost width")
	}
	g := &Grid{Dom: dom, Ghost: ghost}
	for a := 0; a < 3; a++ {
		if dom[a] <= 0 {
			panic(fmt.Sprintf("grid: domain axis %d is %d", a, dom[a]))
		}
		g.Ext[a] = dom[a] + 2*ghost
	}
	g.Data = make([]float64, g.Ext[0]*g.Ext[1]*g.Ext[2])
	return g
}

// Idx returns the linear index of extended coordinate (i,j,k).
func (g *Grid) Idx(i, j, k int) int { return (k*g.Ext[1]+j)*g.Ext[0] + i }

// At reads extended coordinate (i,j,k).
func (g *Grid) At(i, j, k int) float64 { return g.Data[g.Idx(i, j, k)] }

// Set writes extended coordinate (i,j,k).
func (g *Grid) Set(i, j, k int, v float64) { g.Data[g.Idx(i, j, k)] = v }

// ranges returns, for one axis and neighbor direction component, the
// half-open extended-coordinate range of the surface band (send) or ghost
// band (recv). Direction 0 spans the whole domain.
func (g *Grid) ranges(axis, dir int, recv bool) (lo, hi int) {
	gh, dom := g.Ghost, g.Dom[axis]
	switch {
	case dir == 0:
		return gh, gh + dom
	case dir < 0:
		if recv {
			return 0, gh
		}
		return gh, 2 * gh
	default:
		if recv {
			return gh + dom, gh + dom + gh
		}
		return dom, gh + dom
	}
}

// SendRegion returns the extended-coordinate ranges (per axis, half-open)
// of the surface data sent to the neighbor in direction s.
func (g *Grid) SendRegion(s layout.Set) (lo, hi [3]int) {
	for a := 0; a < 3; a++ {
		lo[a], hi[a] = g.ranges(a, s.Axis(a+1), false)
	}
	return lo, hi
}

// RecvRegion returns the ghost ranges receiving from direction s.
func (g *Grid) RecvRegion(s layout.Set) (lo, hi [3]int) {
	for a := 0; a < 3; a++ {
		lo[a], hi[a] = g.ranges(a, s.Axis(a+1), true)
	}
	return lo, hi
}

// RegionCount returns the number of elements in a region.
func RegionCount(lo, hi [3]int) int {
	return (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2])
}

// Pack gathers a region into buf (i-fastest within the region) and returns
// the element count. Rows are copied with bulk copies, the optimized packing
// a framework like YASK performs.
func (g *Grid) Pack(lo, hi [3]int, buf []float64) int {
	p := 0
	w := hi[0] - lo[0]
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := g.Idx(lo[0], j, k)
			copy(buf[p:p+w], g.Data[row:row+w])
			p += w
		}
	}
	return p
}

// Unpack scatters buf into a region, returning the element count.
func (g *Grid) Unpack(lo, hi [3]int, buf []float64) int {
	p := 0
	w := hi[0] - lo[0]
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := g.Idx(lo[0], j, k)
			copy(g.Data[row:row+w], buf[p:p+w])
			p += w
		}
	}
	return p
}

// Subarray returns the mpi derived datatype selecting a region of this grid.
func (g *Grid) Subarray(lo, hi [3]int) mpi.Subarray {
	// mpi.Subarray axis 0 is slowest: (k, j, i).
	return mpi.NewSubarray(
		[]int{g.Ext[2], g.Ext[1], g.Ext[0]},
		[]int{hi[2] - lo[2], hi[1] - lo[1], hi[0] - lo[0]},
		[]int{lo[2], lo[1], lo[0]},
	)
}
