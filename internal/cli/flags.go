package cli

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/fault"
	"github.com/bricklab/brick/internal/harness"
	"github.com/bricklab/brick/internal/metrics"
	"github.com/bricklab/brick/internal/mpi"
	"github.com/bricklab/brick/internal/netmodel"
	"github.com/bricklab/brick/internal/stencil"
)

// Common holds the flags every experiment command shares (cmd/strong,
// cmd/weak). They are registered in one place so a new cross-cutting flag —
// like the -persistent escape hatch — is defined once and appears in every
// binary with the same name, default, and help text.
type Common struct {
	Stencil     string
	Machine     string
	Transport   string
	Ghost       int
	Brick       int
	Iters       int
	Workers     int
	Persistent  bool
	Partitioned bool
	MetricsOut  string
	PprofAddr   string
	Fault       string
	FaultSeed   int64
	Watchdog    time.Duration

	Checkpoint      bool
	CheckpointEvery int
	CheckpointDir   string
	MaxRecoveries   int
	VerifyCRC       bool

	Flight      bool
	FlightDepth int
	FlightOut   string
}

// RegisterCommon installs the shared flags on the default flag set.
// ghostDefault, brickDefault, and itersDefault let the commands keep their
// historical defaults (weak: 16 iterations; strong: 8; soak: small fast
// domains).
func RegisterCommon(ghostDefault, brickDefault, itersDefault int) *Common {
	c := &Common{}
	flag.StringVar(&c.Stencil, "stencil", "7pt", "stencil: 7pt or 125pt")
	flag.StringVar(&c.Machine, "machine", "theta-knl", "machine profile for the network model")
	flag.StringVar(&c.Transport, "transport", mpi.DefaultTransport,
		"mpi transport backend — "+mpi.TransportUsage())
	flag.IntVar(&c.Ghost, "ghost", ghostDefault, "ghost width (elements)")
	flag.IntVar(&c.Brick, "brick", brickDefault, "brick dimension")
	flag.IntVar(&c.Iters, "I", itersDefault, "timed iterations (timesteps)")
	flag.IntVar(&c.Workers, "workers", 0, "compute workers per rank (0 = BRICK_WORKERS or GOMAXPROCS)")
	flag.BoolVar(&c.Persistent, "persistent", true, "use persistent pre-matched exchange plans; false falls back to per-step tag matching")
	flag.BoolVar(&c.Partitioned, "partitioned", false, "split persistent sends into tile-aligned partitions (MPI 4.x Pready pipelining); bit-identical results, requires -persistent")
	flag.StringVar(&c.MetricsOut, "metrics-out", "", "write a metrics snapshot JSON (brick-metrics/v1) to this file")
	flag.StringVar(&c.PprofAddr, "pprof-addr", "", "serve /metrics, /metrics.json, /debug/pprof on this address (e.g. localhost:6060)")
	flag.StringVar(&c.Fault, "fault", "", "fault-injection spec, e.g. delay:rank=*:mean=200us or panic:rank=1:step=3 (see docs/robustness.md)")
	flag.Int64Var(&c.FaultSeed, "fault-seed", 0, "seed for the fault injector's deterministic jitter")
	flag.DurationVar(&c.Watchdog, "watchdog", 0, "abort with a stall report if no exchange progress for this long (0 disables)")
	flag.BoolVar(&c.Checkpoint, "ckpt", false, "checkpoint every -ckpt-every steps and recover from rank failures instead of failing loud")
	flag.IntVar(&c.CheckpointEvery, "ckpt-every", 2, "steps between checkpoints under -ckpt")
	flag.StringVar(&c.CheckpointDir, "ckpt-dir", "", "spill committed checkpoint epochs to this directory (brick-ckpt/v1 files)")
	flag.IntVar(&c.MaxRecoveries, "max-recoveries", 3, "recovery budget under -ckpt before the run fails with the original abort")
	flag.BoolVar(&c.VerifyCRC, "verify-crc", false, "verify payload CRCs at receive; detected corruption aborts (and recovers under -ckpt)")
	flag.BoolVar(&c.Flight, "flight", false, "record per-rank flight-recorder rings (post/deliver/wait/Pready/tile events); on stall or abort a brick-flight/v1 artifact is written to -flight-out (inspect with flightreport)")
	flag.IntVar(&c.FlightDepth, "flight-depth", 0, "per-rank flight ring capacity in events (0 = default 1024)")
	flag.StringVar(&c.FlightOut, "flight-out", "brick-flight.bin", "path of the brick-flight/v1 artifact written when a -flight run fails")
	return c
}

// Resolved carries the parsed shared flags in harness-ready form.
type Resolved struct {
	Stencil stencil.Stencil
	Machine netmodel.Machine
	// Registry is non-nil when any metrics sink was requested; pass it as
	// harness.Config.Metrics.
	Registry *metrics.Registry
}

// Resolve validates the shared flags, creates the metrics registry when any
// sink needs one (needRegistry forces it, e.g. for -bench-out), and starts
// the pprof server if requested. prog prefixes error and log messages.
func (c *Common) Resolve(prog string, needRegistry bool) (Resolved, error) {
	var r Resolved
	var err error
	if r.Stencil, err = ParseStencil(c.Stencil); err != nil {
		return r, err
	}
	if r.Machine, err = ParseMachine(c.Machine); err != nil {
		return r, err
	}
	// Reject a malformed fault spec here, before any world starts.
	if _, err = fault.Parse(c.Fault, c.FaultSeed); err != nil {
		return r, err
	}
	if c.MetricsOut != "" || c.PprofAddr != "" || needRegistry {
		r.Registry = metrics.NewRegistry()
	}
	if c.PprofAddr != "" {
		addr, err := r.Registry.Serve(c.PprofAddr)
		if err != nil {
			return r, fmt.Errorf("pprof server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: serving metrics and pprof on http://%s\n", prog, addr)
	}
	return r, nil
}

// Apply stamps the shared values onto a harness configuration.
func (c *Common) Apply(cfg *harness.Config, r Resolved) {
	cfg.Transport = c.Transport
	cfg.Ghost = c.Ghost
	cfg.Shape = core.Shape{c.Brick, c.Brick, c.Brick}
	cfg.Stencil = r.Stencil
	cfg.Steps = c.Iters
	cfg.Machine = r.Machine
	cfg.Workers = c.Workers
	cfg.Metrics = r.Registry
	cfg.DisablePersistent = !c.Persistent
	cfg.Partitioned = c.Partitioned
	cfg.Fault = c.Fault
	cfg.FaultSeed = c.FaultSeed
	cfg.Watchdog = c.Watchdog
	cfg.Checkpoint = c.Checkpoint
	cfg.CheckpointEvery = c.CheckpointEvery
	cfg.CheckpointDir = c.CheckpointDir
	cfg.MaxRecoveries = c.MaxRecoveries
	cfg.VerifyCRC = c.VerifyCRC
	cfg.Flight = c.Flight
	cfg.FlightDepth = c.FlightDepth
	cfg.FlightOut = c.FlightOut
}

// Finish writes the metrics snapshot if -metrics-out was given.
func (c *Common) Finish(prog string, reg *metrics.Registry) error {
	if c.MetricsOut == "" {
		return nil
	}
	if err := reg.WriteJSONFile(c.MetricsOut); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: metrics snapshot written to %s (inspect with obsreport)\n", prog, c.MetricsOut)
	return nil
}
