package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/bricklab/brick/internal/harness"
	"github.com/bricklab/brick/internal/netmodel"
)

func TestParseImpl(t *testing.T) {
	cases := map[string]harness.Impl{
		"layout": harness.Layout, "LAYOUT": harness.Layout, " memmap ": harness.MemMap,
		"yask": harness.YASK, "yask-ol": harness.YASKOL, "types": harness.MPITypes,
		"basic": harness.Basic, "shift": harness.Shift, "layout-ol": harness.LayoutOL,
		"gpu-layout": harness.GPULayoutCA, "gpu-um": harness.GPULayoutUM,
		"gpu-memmap": harness.GPUMemMapUM, "gpu-types": harness.GPUTypesUM, "gpu-staged": harness.GPUStaged,
	}
	for name, want := range cases {
		got, err := ParseImpl(name)
		if err != nil || got != want {
			t.Errorf("ParseImpl(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseImpl("mpi4"); err == nil {
		t.Error("unknown impl accepted")
	}
	if !strings.Contains(ImplNames(), "memmap") {
		t.Error("ImplNames incomplete")
	}
}

func TestParseImplList(t *testing.T) {
	got, err := ParseImplList("memmap, yask,shift")
	if err != nil || len(got) != 3 || got[2] != harness.Shift {
		t.Errorf("list = %v, %v", got, err)
	}
	if _, err := ParseImplList(""); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := ParseImplList("memmap,bogus"); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestParseRanks(t *testing.T) {
	got, err := ParseRanks("2, 3,4")
	if err != nil || got != [3]int{2, 3, 4} {
		t.Errorf("ranks = %v, %v", got, err)
	}
	for _, bad := range []string{"2,3", "2,3,4,5", "a,b,c", "0,1,1", "-1,1,1"} {
		if _, err := ParseRanks(bad); err == nil {
			t.Errorf("ParseRanks(%q) accepted", bad)
		}
	}
}

func TestParseStencil(t *testing.T) {
	for name, pts := range map[string]int{"7pt": 7, "125pt": 125, "5pt": 5, "Star7": 7, "cube125": 125} {
		st, err := ParseStencil(name)
		if err != nil || len(st.Points) != pts {
			t.Errorf("ParseStencil(%q) = %d points, %v", name, len(st.Points), err)
		}
	}
	if _, err := ParseStencil("27pt"); err == nil {
		t.Error("unknown stencil accepted")
	}
}

func TestFaultFlagsApply(t *testing.T) {
	c := &Common{Stencil: "7pt", Machine: "local", Ghost: 4, Brick: 4,
		Fault: "delay:rank=*:mean=1ms", FaultSeed: 9, Watchdog: 2 * time.Second}
	r, err := c.Resolve("test", false)
	if err != nil {
		t.Fatal(err)
	}
	var cfg harness.Config
	c.Apply(&cfg, r)
	if cfg.Fault != c.Fault || cfg.FaultSeed != 9 || cfg.Watchdog != 2*time.Second {
		t.Errorf("fault flags not applied: %+v", cfg)
	}
}

func TestResolveRejectsBadFaultSpec(t *testing.T) {
	c := &Common{Stencil: "7pt", Machine: "local", Fault: "explode:rank=1"}
	if _, err := c.Resolve("test", false); err == nil {
		t.Error("malformed fault spec accepted")
	}
}

func TestParseMachine(t *testing.T) {
	for _, name := range []string{"theta-knl", "summit-v100", "local"} {
		if _, err := ParseMachine(name); err != nil {
			t.Errorf("ParseMachine(%q): %v", name, err)
		}
	}
	if _, err := ParseMachine("frontier"); err == nil {
		t.Error("unknown machine accepted")
	}
}

// TestParseMachineProfileFile: a path to a brick-netmodel/v1 profile
// (cmd/netcal output) is accepted wherever a built-in name is, and a file
// that is not a profile fails loud instead of falling back to a default.
func TestParseMachineProfileFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "measured.json")
	want := netmodel.ThetaKNL()
	want.Name = "measured"
	if err := netmodel.SaveFile(path, want, "test"); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMachine(path)
	if err != nil {
		t.Fatalf("ParseMachine(profile path): %v", err)
	}
	if got != want {
		t.Fatalf("loaded machine %+v, want %+v", got, want)
	}
	bad := filepath.Join(dir, "not-a-profile.json")
	if err := os.WriteFile(bad, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMachine(bad); err == nil {
		t.Error("non-profile file accepted as a machine")
	}
}
