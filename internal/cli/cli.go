// Package cli holds the option parsing shared by the command-line tools, so
// that flag handling is tested once rather than re-implemented per binary.
package cli

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/bricklab/brick/internal/harness"
	"github.com/bricklab/brick/internal/netmodel"
	"github.com/bricklab/brick/internal/stencil"
)

// impls maps the user-facing implementation names to harness values.
var impls = map[string]harness.Impl{
	"yask":       harness.YASK,
	"yask-ol":    harness.YASKOL,
	"types":      harness.MPITypes,
	"basic":      harness.Basic,
	"layout":     harness.Layout,
	"memmap":     harness.MemMap,
	"shift":      harness.Shift,
	"layout-ol":  harness.LayoutOL,
	"gpu-layout": harness.GPULayoutCA,
	"gpu-um":     harness.GPULayoutUM,
	"gpu-memmap": harness.GPUMemMapUM,
	"gpu-types":  harness.GPUTypesUM,
	"gpu-staged": harness.GPUStaged,
}

// ImplNames returns the accepted implementation names, sorted for help text.
func ImplNames() string {
	return "yask, yask-ol, types, basic, layout, layout-ol, memmap, shift, gpu-layout, gpu-um, gpu-memmap, gpu-types, gpu-staged"
}

// ParseImpl resolves one implementation name (case-insensitive).
func ParseImpl(name string) (harness.Impl, error) {
	im, ok := impls[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return 0, fmt.Errorf("unknown implementation %q (choose from %s)", name, ImplNames())
	}
	return im, nil
}

// ParseImplList resolves a comma-separated list of implementation names.
func ParseImplList(list string) ([]harness.Impl, error) {
	var out []harness.Impl
	for _, name := range strings.Split(list, ",") {
		if strings.TrimSpace(name) == "" {
			continue
		}
		im, err := ParseImpl(name)
		if err != nil {
			return nil, err
		}
		out = append(out, im)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no implementations given")
	}
	return out, nil
}

// ParseRanks parses "i,j,k" into a rank grid.
func ParseRanks(s string) ([3]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("rank grid must be i,j,k")
	}
	var out [3]int
	for a, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return out, fmt.Errorf("bad rank count %q", p)
		}
		out[a] = v
	}
	return out, nil
}

// ParseStencil resolves a stencil name.
func ParseStencil(name string) (stencil.Stencil, error) {
	switch strings.ToLower(name) {
	case "7pt", "star7":
		return stencil.Star7(), nil
	case "125pt", "cube125":
		return stencil.Cube125(), nil
	case "5pt", "star5":
		return stencil.Star5(), nil
	default:
		return stencil.Stencil{}, fmt.Errorf("unknown stencil %q (7pt, 125pt, 5pt)", name)
	}
}

// ParseMachine resolves a machine-profile name: a built-in profile, or
// the path of a measured brick-netmodel/v1 profile file (see cmd/netcal).
func ParseMachine(name string) (netmodel.Machine, error) {
	if _, err := os.Stat(name); err == nil {
		return netmodel.LoadFile(name)
	}
	m, ok := netmodel.ByName(name)
	if !ok {
		return m, fmt.Errorf("unknown machine %q (theta-knl, summit-v100, local, or a brick-netmodel/v1 profile path)", name)
	}
	return m, nil
}
