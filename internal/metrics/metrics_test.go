package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestNilRegistryNoOp pins the disabled path: a nil registry hands out nil
// instruments and every operation, including exposition, is a no-op.
func TestNilRegistryNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c", Labels{"a": "b"})
	g := r.Gauge("g", nil)
	h := r.Histogram("h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	c.Add(5)
	c.Inc()
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	r.Describe("c", "help")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("nil histogram stats must read as zero")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil exposition: err=%v len=%d", err, buf.Len())
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil snapshot must be empty")
	}
}

// TestHistogramZeroObservations: an empty histogram reports zeros
// everywhere and an empty bucket list.
func TestHistogramZeroObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty_seconds", nil)
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram: count=%d sum=%v min=%v max=%v", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) = %v, want 0", q, got)
		}
	}
	hs := r.Snapshot().Histograms[0]
	if hs.Count != 0 || len(hs.Buckets) != 0 || hs.P50 != 0 || hs.P99 != 0 {
		t.Errorf("empty snapshot: %+v", hs)
	}
}

// TestHistogramSingleBucket: identical observations land in one bucket and
// every quantile is exactly that value (min/max clamping).
func TestHistogramSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("single_seconds", nil)
	const v = 0.003
	for i := 0; i < 100; i++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-100*v) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, 100*v)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != v {
			t.Errorf("Quantile(%v) = %v, want exactly %v", q, got, v)
		}
	}
	if n := len(r.Snapshot().Histograms[0].Buckets); n != 1 {
		t.Errorf("want 1 occupied bucket, got %d", n)
	}
}

// TestHistogramQuantiles checks p50/p99 against a known two-mode
// distribution: 90 fast observations and 10 slow ones an order of magnitude
// apart. p50 must sit in the fast mode's bucket and p99 in the slow one's.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("modes_seconds", nil)
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.1)
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	// Log2 buckets: 0.001 ∈ (2^-10, 2^-9], 0.1 ∈ (2^-4, 2^-3].
	if p50 < 1.0/2048 || p50 > 1.0/512 {
		t.Errorf("p50 = %v, want within the fast mode's bucket", p50)
	}
	if p99 < 1.0/32 || p99 > 0.1 {
		t.Errorf("p99 = %v, want within the slow mode's bucket", p99)
	}
	if h.Max() != 0.1 || h.Min() != 0.001 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// TestHistogramExtremes: zero, negative, tiny, and huge observations must
// land in the underflow/overflow buckets without corrupting quantiles.
func TestHistogramExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("extremes", nil)
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1e-12)
	h.Observe(1e9)
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != -5 || h.Max() != 1e9 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(1); q != 1e9 {
		t.Errorf("p100 = %v, want max", q)
	}
	if q := h.Quantile(0); q != -5 {
		t.Errorf("p0 = %v, want min", q)
	}
}

// TestBucketIndexBoundaries: exact powers of two belong to the bucket they
// bound (buckets are (lo, hi]).
func TestBucketIndexBoundaries(t *testing.T) {
	for i := 1; i < histBuckets-1; i++ {
		hi := bucketUpper(i)
		if got := bucketIndex(hi); got != i {
			t.Errorf("bucketIndex(%g) = %d, want %d", hi, got, i)
		}
		if got := bucketIndex(hi * 1.0001); got != i+1 {
			t.Errorf("bucketIndex(just above %g) = %d, want %d", hi, got, i+1)
		}
	}
}

// TestHistogramConcurrentObserve hammers one histogram from 8 goroutines;
// run under -race this pins the lock-free Observe path, and the totals
// must balance exactly.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("concurrent_seconds", Labels{"phase": "calc"})
	const goroutines, perGo = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGo; i++ {
				h.Observe(float64(g+1) * 0.0001)
			}
		}(g)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(goroutines*perGo); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	var wantSum float64
	for g := 0; g < goroutines; g++ {
		wantSum += float64(g+1) * 0.0001 * perGo
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
	if h.Min() != 0.0001 || h.Max() != 0.0008 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// TestCounterGaugeConcurrent exercises counters and gauges from many
// goroutines under -race.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Instrument lookup itself must be concurrency-safe too.
			c := r.Counter("ops_total", Labels{"rank": "0"})
			ga := r.Gauge("depth", nil)
			for i := 0; i < 1000; i++ {
				c.Inc()
				ga.Add(1)
				ga.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total", Labels{"rank": "0"}).Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("depth", nil).Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
}

// TestSeriesIdentity: same name+labels yield the same instrument, different
// labels a different one; caller label-map mutation must not leak in.
func TestSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	lb := Labels{"impl": "Layout"}
	c1 := r.Counter("msgs_total", lb)
	lb["impl"] = "MemMap"
	c2 := r.Counter("msgs_total", lb)
	if c1 == c2 {
		t.Fatal("distinct label values must give distinct series")
	}
	if c1 != r.Counter("msgs_total", Labels{"impl": "Layout"}) {
		t.Error("same labels must return the cached series")
	}
}

// TestSnapshotRoundTrip writes a snapshot to disk and loads it back.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs_total", Labels{"impl": "Layout", "rank": "0"}).Add(42)
	r.Gauge("queue_depth", nil).Set(3)
	h := r.Histogram("phase_seconds", Labels{"phase": "wait"})
	h.Observe(0.001)
	h.Observe(0.004)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != SnapshotSchema {
		t.Errorf("schema = %q", snap.Schema)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 42 {
		t.Errorf("counters: %+v", snap.Counters)
	}
	hs := snap.FindHistograms("phase_seconds", map[string]string{"phase": "wait"})
	if len(hs) != 1 || hs[0].Count != 2 || hs[0].Max != 0.004 {
		t.Errorf("histograms: %+v", hs)
	}
	if hs[0].Mean() != 0.0025 {
		t.Errorf("mean = %v", hs[0].Mean())
	}
	// The snapshot must be plain JSON (no Inf/NaN smuggled through).
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("re-marshal: %v", err)
	}
}

// TestLoadSnapshotRejectsWrongSchema guards the obsreport input path.
func TestLoadSnapshotRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Error("want schema error")
	}
}
