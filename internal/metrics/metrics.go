// Package metrics is the unified observability layer: a concurrency-safe
// registry of counters, gauges, and log-bucketed latency histograms with
// label support (impl, rank, phase, direction), Prometheus text exposition,
// and JSON snapshot export.
//
// The paper's argument rests on per-phase measurement — calc/pack/call/wait
// breakdowns and message/byte counts are what show the Layout (42 msgs) and
// MemMap (26 msgs) exchanges beating pack-based exchange — so every layer
// (mpi, stencil, harness) reports into one registry that tools can export,
// diff, and gate on.
//
// Disabled-path cost is near zero by construction: a nil *Registry returns
// nil instruments, and every instrument method nil-checks its receiver, so
// uninstrumented runs pay only a pointer comparison. Enabled-path
// observations are lock-free (atomics); the registry lock is taken only
// when an instrument is first created or the registry is exported.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimensions to an instrument. Instruments with the same name
// but different label values are distinct series of one family.
type Labels map[string]string

// Registry holds all instruments of one process or run. The zero value is
// ready to use; a nil *Registry is a valid always-disabled registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // family name -> help text
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry { return &Registry{} }

// Describe sets the help text for a metric family, shown in the Prometheus
// exposition. Safe to call more than once; the last call wins.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.help == nil {
		r.help = map[string]string{}
	}
	r.help[name] = help
	r.mu.Unlock()
}

// seriesKey serializes name+labels into a stable map key that is also the
// exposition sort key.
func seriesKey(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte(0xff)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// copyLabels snapshots the caller's label map so later mutation cannot
// corrupt the registry.
func copyLabels(labels Labels) Labels {
	if len(labels) == 0 {
		return nil
	}
	out := make(Labels, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// Counter returns (creating on first use) the counter series for
// name+labels. A nil registry returns a nil, always-no-op counter. Cache
// the returned instrument on hot paths: creation takes the registry lock,
// Add does not.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{name: name, labels: copyLabels(labels)}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge series for name+labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{name: name, labels: copyLabels(labels)}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the log-bucketed histogram
// series for name+labels.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = map[string]*Histogram{}
	}
	h, ok := r.hists[key]
	if !ok {
		h = newHistogram(name, copyLabels(labels))
		r.hists[key] = h
	}
	return h
}

// Counter is a monotonically increasing integer. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	name   string
	labels Labels
	v      atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	name   string
	labels Labels
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// sortedSeries returns the registry's series keys in exposition order.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatLabels renders {k="v",...} in sorted key order, or "" without
// labels.
func formatLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}
