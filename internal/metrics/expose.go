package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
)

// SnapshotSchema identifies the JSON snapshot format version.
const SnapshotSchema = "brick-metrics/v1"

// Snapshot is the point-in-time JSON export of a registry. It is the
// interchange format between the harness binaries (-metrics-out) and
// cmd/obsreport.
type Snapshot struct {
	Schema     string              `json:"schema"`
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// CounterSnapshot is one counter series.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSnapshot is one gauge series.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Bucket is one non-cumulative histogram bucket; LE is the inclusive upper
// bound rendered as a decimal string ("+Inf" for the overflow bucket) so
// the JSON stays finite. Empty buckets are omitted from snapshots.
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is one histogram series with pre-computed quantiles.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// Mean returns sum/count, or 0 with no observations.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// formatLE renders a bucket bound the way Prometheus does.
func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty snapshot. Series are sorted by name then labels, so snapshots of
// the same run are deterministic.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Schema: SnapshotSchema}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range sortedKeys(r.counters) {
		c := r.counters[k]
		snap.Counters = append(snap.Counters, CounterSnapshot{
			Name: c.name, Labels: c.labels, Value: c.v.Load(),
		})
	}
	for _, k := range sortedKeys(r.gauges) {
		g := r.gauges[k]
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{
			Name: g.name, Labels: g.labels, Value: g.Value(),
		})
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		hs := HistogramSnapshot{
			Name: h.name, Labels: h.labels,
			Count: h.Count(), Sum: h.Sum(),
			Min: h.Min(), Max: h.Max(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		}
		counts := h.buckets()
		for i, n := range counts {
			if n == 0 {
				continue
			}
			hs.Buckets = append(hs.Buckets, Bucket{LE: formatLE(bucketUpper(i)), Count: n})
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSONFile writes the registry snapshot to path.
func (r *Registry) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshot reads a snapshot previously written with WriteJSON.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("metrics: parse %s: %w", path, err)
	}
	if snap.Schema != SnapshotSchema {
		return nil, fmt.Errorf("metrics: %s: unexpected schema %q (want %q)", path, snap.Schema, SnapshotSchema)
	}
	return &snap, nil
}

// FindHistograms returns the snapshot's histogram series matching name and
// every given label (extra labels on the series are ignored).
func (s *Snapshot) FindHistograms(name string, labels map[string]string) []HistogramSnapshot {
	var out []HistogramSnapshot
	for _, h := range s.Histograms {
		if h.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if h.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, h)
		}
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, then histograms with cumulative
// le buckets plus _sum and _count, sorted for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	families := map[string][]string{} // family -> rendered lines
	types := map[string]string{}
	var order []string
	add := func(name, typ, line string) {
		if _, ok := types[name]; !ok {
			types[name] = typ
			order = append(order, name)
		}
		families[name] = append(families[name], line)
	}

	for _, k := range sortedKeys(r.counters) {
		c := r.counters[k]
		add(c.name, "counter", fmt.Sprintf("%s%s %d", c.name, formatLabels(c.labels), c.v.Load()))
	}
	for _, k := range sortedKeys(r.gauges) {
		g := r.gauges[k]
		add(g.name, "gauge", fmt.Sprintf("%s%s %s", g.name, formatLabels(g.labels),
			strconv.FormatFloat(g.Value(), 'g', -1, 64)))
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		counts := h.buckets()
		var cum uint64
		for i, n := range counts {
			cum += n
			if n == 0 && i != histBuckets-1 {
				continue // keep the exposition compact: only non-empty + +Inf
			}
			lb := copyLabels(h.labels)
			if lb == nil {
				lb = Labels{}
			}
			lb["le"] = formatLE(bucketUpper(i))
			add(h.name, "histogram", fmt.Sprintf("%s_bucket%s %d", h.name, formatLabels(lb), cum))
		}
		add(h.name, "histogram", fmt.Sprintf("%s_sum%s %s", h.name, formatLabels(h.labels),
			strconv.FormatFloat(h.Sum(), 'g', -1, 64)))
		add(h.name, "histogram", fmt.Sprintf("%s_count%s %d", h.name, formatLabels(h.labels), h.Count()))
	}

	sort.Strings(order)
	for _, name := range order {
		if help := r.help[name]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, types[name]); err != nil {
			return err
		}
		for _, line := range families[name] {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
