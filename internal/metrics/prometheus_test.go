package metrics

import (
	"bytes"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the Prometheus exposition golden file")

// goldenRegistry builds a registry with fixed contents covering every
// instrument kind, label rendering, help text, and histogram bucketing.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Describe("brick_phase_seconds", "Per-timestep phase durations.")
	r.Describe("mpi_sent_messages_total", "Point-to-point sends initiated.")
	r.Counter("mpi_sent_messages_total", Labels{"impl": "Layout", "rank": "0"}).Add(42)
	r.Counter("mpi_sent_messages_total", Labels{"impl": "Layout", "rank": "1"}).Add(42)
	r.Gauge("stencil_pool_queue_depth", nil).Set(3)
	h := r.Histogram("brick_phase_seconds", Labels{"impl": "Layout", "phase": "wait", "rank": "0"})
	h.Observe(0.001)
	h.Observe(0.001)
	h.Observe(0.015)
	h.Observe(3.5)
	return r
}

// TestPrometheusGolden locks the exposition format against
// testdata/exposition.golden. Regenerate with: go test ./internal/metrics
// -run TestPrometheusGolden -update-golden
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusDeterministic: two expositions of the same registry are
// byte-identical (map iteration must not leak into the output).
func TestPrometheusDeterministic(t *testing.T) {
	r := goldenRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("exposition is not deterministic")
	}
}

// TestHandlerEndpoints drives the debug mux: Prometheus, JSON, expvar, and
// the pprof index must all respond.
func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":            "mpi_sent_messages_total",
		"/metrics.json":       SnapshotSchema,
		"/debug/vars":         "brick_metrics",
		"/debug/pprof/":       "goroutine",
		"/debug/pprof/symbol": "",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}
}
