package metrics

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar publication (expvar.Publish
// panics on duplicate names).
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarReg  *Registry
)

// publishExpvar exposes the registry snapshot as the expvar "brick_metrics"
// so it appears on /debug/vars alongside the runtime's memstats.
func publishExpvar(reg *Registry) {
	expvarMu.Lock()
	expvarReg = reg
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("brick_metrics", expvar.Func(func() any {
			expvarMu.Lock()
			r := expvarReg
			expvarMu.Unlock()
			return r.Snapshot()
		}))
	})
}

// Handler returns an http.Handler serving this registry's exposition
// endpoints plus the standard Go profiling surface:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (the -metrics-out schema)
//	/debug/vars    expvar (includes brick_metrics)
//	/debug/pprof/  CPU, heap, goroutine, ... profiles
func (r *Registry) Handler() http.Handler {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug HTTP server on addr (e.g. "localhost:6060") in a
// background goroutine and returns the bound listener address. The server
// lives until the process exits; harness binaries start it behind the
// -pprof-addr flag so long runs can be profiled and scraped live.
func (r *Registry) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
