package metrics

// Well-known metric names shared by the instrumented layers (mpi, stencil,
// harness) and the consumers (cmd/obsreport, internal/bench, the Prometheus
// endpoint). Label conventions are documented in docs/observability.md:
//
//	impl   exchange implementation (harness.Impl.String()); the per-phase
//	       family also carries rank="all" aggregate series per impl
//	rank   MPI rank id, or "all" for the cross-rank aggregate
//	phase  calc | pack | call | wait
const (
	// PhaseSeconds: histogram of per-timestep phase durations
	// (labels: impl, rank, phase).
	PhaseSeconds = "brick_phase_seconds"
	// GStencilsGauge: end-of-run throughput in GStencil/s (labels: impl).
	GStencilsGauge = "brick_gstencils"
	// MsgsPerExchangeGauge: messages each rank sends per exchange
	// (labels: impl).
	MsgsPerExchangeGauge = "brick_msgs_per_exchange"

	// Plan-reuse counters of the persistent exchange lifecycle, mirrored
	// from each rank's Exchanger.Stats() at the end of a harness run
	// (labels: impl, rank, variant). One plan built with many starts is the
	// point of the persistent design: starts_total / plans_built_total is
	// the reuse factor.
	//
	// PlansBuiltTotal: compiled exchange plans built.
	PlansBuiltTotal = "exchange_plans_built_total"
	// PlanStartsTotal: times a compiled plan was started.
	PlanStartsTotal = "exchange_plan_starts_total"
	// PlanStartBytesTotal: payload bytes posted by those starts.
	PlanStartBytesTotal = "exchange_plan_start_bytes_total"

	// MPISendSeconds: histogram of per-message latency from Isend post to
	// delivery into the matched receive buffer (labels: rank).
	MPISendSeconds = "mpi_send_seconds"
	// MPISendBytes: histogram of per-message payload sizes at Isend
	// (labels: rank).
	MPISendBytes = "mpi_send_bytes"
	// MPIRecvMatchWaitSeconds: histogram of posted-receive match wait — the
	// time a posted Irecv waited before a send matched and delivered
	// (labels: rank).
	MPIRecvMatchWaitSeconds = "mpi_recv_match_wait_seconds"
	// MPIRecvBytes: histogram of delivered payload sizes (labels: rank).
	MPIRecvBytes = "mpi_recv_bytes"
	// MPIWaitSeconds: histogram of time blocked in Request.Wait
	// (labels: rank).
	MPIWaitSeconds = "mpi_wait_seconds"
	// MPISentMsgsTotal/...: traffic counters mirrored from
	// Comm.TrafficSnapshot at the end of a harness run
	// (labels: impl, rank).
	MPISentMsgsTotal  = "mpi_sent_messages_total"
	MPISentBytesTotal = "mpi_sent_bytes_total"
	MPIRecvMsgsTotal  = "mpi_received_messages_total"
	MPIRecvBytesTotal = "mpi_received_bytes_total"

	// FaultInjectedTotal: counter of faults injected by the internal/fault
	// injector (labels: kind = delay|stall|panic|mapfail|allocfail, rank).
	// Zero series exist when injection is disabled — the hooks cost only a
	// nil check.
	FaultInjectedTotal = "fault_injected_total"
	// ExchangeDegradedTotal: counter of MemMap→copy degradations — times an
	// exchange view fell back to copy-based windows instead of aliasing
	// virtual-memory views (labels: impl, rank, reason =
	// heap-storage|unmapped-arena|map-failed|forced).
	ExchangeDegradedTotal = "exchange_degraded_total"

	// Partitioned-exchange families (MPI 4.x Psend/Pready pipelining).
	//
	// ExchangePartitionsReadyTotal: counter of send partitions marked ready
	// — one Pready per surface tile per armed send it feeds (labels: none;
	// attached per rank via SetPartitionMetrics on a partitioned plan).
	ExchangePartitionsReadyTotal = "exchange_partitions_ready_total"
	// PartitionReadyLagSeconds: histogram of the delay from arming a
	// partitioned send (StartSends) to each partition's Pready — the
	// pipeline depth the surface pass actually achieves.
	PartitionReadyLagSeconds = "partition_ready_lag_seconds"

	// Checkpoint/recovery families of the internal/ckpt + harness recovery
	// driver (PR 5).
	//
	// CkptBytesTotal: counter of snapshot payload bytes deposited
	// (labels: impl, rank).
	CkptBytesTotal = "ckpt_bytes_total"
	// CkptEpochsTotal: counter of committed world-wide checkpoint epochs
	// (labels: impl).
	CkptEpochsTotal = "ckpt_epochs_total"
	// RecoveryTotal: counter of recovery verdicts (labels: rank = failed
	// rank or "-1" for watchdog aborts, outcome = recovered|budget-exhausted).
	RecoveryTotal = "recovery_total"

	// Flight-recorder families (internal/flight, PR 7), mirrored from each
	// rank's ring at the end of a harness run.
	//
	// FlightEventsTotal: counter of flight events recorded, including ones
	// later overwritten by ring wraparound (labels: rank).
	FlightEventsTotal = "flight_events_total"
	// FlightEventsDroppedTotal: counter of flight events lost to ring
	// wraparound — a persistently high ratio to FlightEventsTotal means
	// -flight-depth is too small for the step cadence (labels: rank).
	FlightEventsDroppedTotal = "flight_events_dropped_total"

	// Transport-connection families (tcp backend, PR 10).
	//
	// TransportReconnectsTotal: counter of data-connection re-establishments
	// after a previously working connection to a peer dropped (labels: rank,
	// peer). A flapping link shows up here before it shows up as a stall.
	TransportReconnectsTotal = "transport_reconnects_total"
	// TransportHeartbeatMissesTotal: counter of heartbeat-interval misses —
	// an accepted peer connection silent past the miss threshold but not yet
	// declared dead (labels: rank, peer).
	TransportHeartbeatMissesTotal = "transport_heartbeat_misses_total"
	// TransportFramesTotal: counter of wire frames handled by the tcp
	// backend (labels: kind = data|pdata|ppart|hb|stale-drop|dup-drop|
	// net-drop|net-dup).
	TransportFramesTotal = "transport_frames_total"

	// StencilTileSeconds: histogram of per-tile kernel execution time in
	// the worker pool (no labels; the pool is process-wide).
	StencilTileSeconds = "stencil_tile_seconds"
	// PoolQueueDepth: gauge of tasks queued to the pool at submit time.
	PoolQueueDepth = "stencil_pool_queue_depth"
	// PoolTilesTotal: counter of tiles executed by the pool.
	PoolTilesTotal = "stencil_pool_tiles_total"
	// PoolBusySeconds: gauge accumulating total worker busy time; divided
	// by workers × wall time it gives pool utilization.
	PoolBusySeconds = "stencil_pool_busy_seconds_total"
	// PoolWorkers: gauge of the pool's worker count.
	PoolWorkers = "stencil_pool_workers"
)
