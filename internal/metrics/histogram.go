package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: logarithmic base-2 buckets spanning one
// nanosecond-ish to ~17 minutes when observations are seconds (the unit is
// up to the caller; buckets are pure powers of two). Bucket i (1 <= i <=
// histBuckets-2) covers (2^(histMinExp+i-2), 2^(histMinExp+i-1)]; bucket 0
// is the underflow bucket (<= 2^(histMinExp-1), including zero and negative
// observations) and the last bucket is the overflow (+Inf) bucket.
const (
	histMinExp  = -30 // smallest finite upper bound is 2^-30 ≈ 0.93ns
	histMaxExp  = 10  // largest finite upper bound is 2^10 = 1024s
	histBuckets = histMaxExp - histMinExp + 3
)

// Histogram is a fixed-layout log2-bucketed distribution with streaming
// sum/min/max, built for latency and size observations. Observe is
// lock-free; quantiles are estimated by geometric interpolation inside the
// containing bucket and clamped to the exact observed [min, max]. All
// methods are safe for concurrent use and no-ops on a nil receiver.
type Histogram struct {
	name   string
	labels Labels

	counts  [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // float64 bits; +Inf until first observation
	maxBits atomic.Uint64 // float64 bits; -Inf until first observation
}

func newHistogram(name string, labels Labels) *Histogram {
	h := &Histogram{name: name, labels: labels}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketUpper returns the inclusive upper bound of bucket i; the last
// bucket's bound is +Inf.
func bucketUpper(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, histMinExp+i-1)
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v float64) int {
	if v <= bucketUpper(0) || math.IsNaN(v) {
		return 0
	}
	// v = frac × 2^exp with frac in [0.5, 1), so v ∈ (2^(exp-1), 2^exp]
	// modulo the frac==0.5 boundary, which Frexp maps to the lower bucket's
	// open end — nudge exact powers of two down into their closed bucket.
	_, exp := math.Frexp(v)
	if math.Ldexp(1, exp-1) == v {
		exp--
	}
	i := exp - histMinExp + 1
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min returns the smallest observation, or 0 with none.
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation, or 0 with none.
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts:
// it finds the bucket containing the target rank and interpolates linearly
// within the bucket's bounds, then clamps to the exact observed [min, max]
// so single-value and single-bucket distributions report exactly.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min() // exact endpoints: the extremes are tracked directly
	}
	if q >= 1 {
		return h.Max()
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum uint64
	est := h.Max()
	for i := 0; i < histBuckets; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= target {
			lo := 0.0
			if i > 0 {
				lo = bucketUpper(i - 1)
			}
			hi := bucketUpper(i)
			if math.IsInf(hi, 1) {
				hi = h.Max()
			}
			frac := (target - float64(cum)) / float64(n)
			est = lo + (hi-lo)*frac
			break
		}
		cum += n
	}
	if mn := h.Min(); est < mn {
		est = mn
	}
	if mx := h.Max(); est > mx {
		est = mx
	}
	return est
}

// buckets returns the non-cumulative per-bucket counts.
func (h *Histogram) buckets() [histBuckets]uint64 {
	var out [histBuckets]uint64
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}
