package netmodel

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestProfileRoundTrip: a machine saved as a brick-netmodel/v1 profile
// loads back with every link and property intact.
func TestProfileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.json")
	want := SummitV100()
	if err := SaveFile(path, want, "test"); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got != want {
		t.Fatalf("round trip changed the machine:\n got %+v\nwant %+v", got, want)
	}
}

// TestProfileDefaults: a minimal measured profile (name + net only) still
// yields a usable machine — the page size defaults to the host's.
func TestProfileDefaults(t *testing.T) {
	p := Profile{
		Schema: ProfileSchema,
		Name:   "measured",
		Net:    LinkProfile{LatencyNs: 1500, BandwidthBps: 2e9},
	}
	m := p.Machine()
	if m.Name != "measured" || m.Net.Latency != 1500*time.Nanosecond || m.Net.Bandwidth != 2e9 {
		t.Fatalf("net link not restored: %+v", m)
	}
	if m.PageSize != os.Getpagesize() {
		t.Fatalf("page size %d, want host default %d", m.PageSize, os.Getpagesize())
	}
	if m.Cost(Network, 1<<20) <= m.Net.Latency {
		t.Fatal("loaded link charges no bandwidth cost")
	}
}

// TestLoadFileRejects pins the failure modes: missing file, non-JSON,
// wrong schema, and a nameless profile.
func TestLoadFileRejects(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadFile(write("garbage.json", "not json")); err == nil {
		t.Error("non-JSON accepted")
	}
	p := write("schema.json", `{"schema":"brick-netmodel/v0","name":"x","net":{"latency_ns":1,"bandwidth_bps":1}}`)
	if _, err := LoadFile(p); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema not rejected: %v", err)
	}
	p = write("nameless.json", `{"schema":"brick-netmodel/v1","net":{"latency_ns":1,"bandwidth_bps":1}}`)
	if _, err := LoadFile(p); err == nil || !strings.Contains(err.Error(), "name") {
		t.Errorf("nameless profile not rejected: %v", err)
	}
}
