package netmodel

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ProfileSchema identifies the JSON machine-profile format version.
const ProfileSchema = "brick-netmodel/v1"

// Profile is the on-disk form of a Machine: a measured (or hand-tuned)
// α/β profile that experiments can load by path wherever a built-in
// machine name is accepted. cmd/netcal writes one from a ping-pong and
// bandwidth sweep over the tcp transport, turning the built-in profiles
// from fiction into calibration targets.
type Profile struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	// Source records how the profile was produced (e.g. the netcal
	// command line), for provenance when profiles are checked in.
	Source string      `json:"source,omitempty"`
	Net    LinkProfile `json:"net"`
	Host   LinkProfile `json:"host,omitempty"`
	Direct LinkProfile `json:"direct,omitempty"`
	Fault  LinkProfile `json:"fault,omitempty"`
	// PageSizeBytes is the host base page size (MemMap padding
	// granularity); 0 falls back to 4 KiB at load.
	PageSizeBytes int `json:"page_size_bytes,omitempty"`
	// TypeElemCostNs is the modeled per-element derived-datatype cost.
	TypeElemCostNs float64 `json:"type_elem_cost_ns,omitempty"`
}

// LinkProfile is one α–β channel in JSON form.
type LinkProfile struct {
	LatencyNs    float64 `json:"latency_ns"`
	BandwidthBps float64 `json:"bandwidth_bps"`
}

func toLinkProfile(l Link) LinkProfile {
	return LinkProfile{LatencyNs: float64(l.Latency.Nanoseconds()), BandwidthBps: l.Bandwidth}
}

func (lp LinkProfile) link() Link {
	return Link{Latency: time.Duration(lp.LatencyNs * float64(time.Nanosecond)), Bandwidth: lp.BandwidthBps}
}

// ToProfile captures a Machine as a serializable profile.
func ToProfile(m Machine, source string) Profile {
	return Profile{
		Schema: ProfileSchema,
		Name:   m.Name,
		Source: source,
		Net:    toLinkProfile(m.Net),
		Host:   toLinkProfile(m.Host),
		Direct: toLinkProfile(m.Direct),
		Fault:  toLinkProfile(m.Fault),

		PageSizeBytes:  m.PageSize,
		TypeElemCostNs: float64(m.TypeElemCost.Nanoseconds()),
	}
}

// Machine converts a loaded profile back into a Machine, applying the
// defaults a minimal measured profile leaves unset.
func (p Profile) Machine() Machine {
	m := Machine{
		Name:         p.Name,
		Net:          p.Net.link(),
		Host:         p.Host.link(),
		Direct:       p.Direct.link(),
		Fault:        p.Fault.link(),
		PageSize:     p.PageSizeBytes,
		TypeElemCost: time.Duration(p.TypeElemCostNs * float64(time.Nanosecond)),
	}
	if m.PageSize <= 0 {
		m.PageSize = os.Getpagesize()
	}
	return m
}

// SaveFile writes the machine as a brick-netmodel/v1 profile.
func SaveFile(path string, m Machine, source string) error {
	b, err := json.MarshalIndent(ToProfile(m, source), "", "  ")
	if err != nil {
		return fmt.Errorf("netmodel: encoding profile: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadFile reads a brick-netmodel/v1 profile and returns its Machine. A
// wrong schema (or a file that is not a profile at all) is an error, so
// a stray path passed as -machine fails loud instead of silently
// modeling with garbage.
func LoadFile(path string) (Machine, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Machine{}, fmt.Errorf("netmodel: %w", err)
	}
	var p Profile
	if err := json.Unmarshal(b, &p); err != nil {
		return Machine{}, fmt.Errorf("netmodel: %s: %w", path, err)
	}
	if p.Schema != ProfileSchema {
		return Machine{}, fmt.Errorf("netmodel: %s: unexpected schema %q (want %q)", path, p.Schema, ProfileSchema)
	}
	if p.Name == "" {
		return Machine{}, fmt.Errorf("netmodel: %s: profile has no name", path)
	}
	if p.Net.LatencyNs < 0 || p.Net.BandwidthBps < 0 {
		return Machine{}, fmt.Errorf("netmodel: %s: negative net α/β", path)
	}
	return p.Machine(), nil
}
