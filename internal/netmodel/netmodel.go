// Package netmodel charges deterministic LogGP-style costs to communication
// events so that experiments report a reproducible "network" time alongside
// measured wall time. The paper's evaluation ran on Cray Aries (Theta) and
// EDR InfiniBand (Summit); off-testbed we cannot reproduce absolute numbers,
// but an α+n/β model preserves the phenomena the paper studies: message-count
// effects dominate for small subdomains, bandwidth effects for large, and
// padding wastes a size-independent amount of bandwidth per message.
package netmodel

import (
	"fmt"
	"time"
)

// LinkKind identifies which physical path a transfer uses.
type LinkKind int

const (
	// Network is rank-to-rank transfer over the interconnect.
	Network LinkKind = iota
	// HostDevice is CPU<->GPU staging over NVLink or PCIe.
	HostDevice
	// GPUDirect is NIC<->GPU RDMA, bypassing the host (CUDA-Aware MPI).
	GPUDirect
	// PageMigration is a unified-memory page-fault service.
	PageMigration
)

func (k LinkKind) String() string {
	switch k {
	case Network:
		return "network"
	case HostDevice:
		return "host-device"
	case GPUDirect:
		return "gpudirect"
	case PageMigration:
		return "page-migration"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Link is one α–β cost channel: a transfer of n bytes costs
// Latency + n/Bandwidth.
type Link struct {
	Latency   time.Duration // per-message/per-operation startup cost α
	Bandwidth float64       // sustained bytes per second β
}

// Cost returns the modeled duration of moving n bytes across the link.
func (l Link) Cost(n int) time.Duration {
	if n < 0 {
		panic("netmodel: negative transfer size")
	}
	d := l.Latency
	if l.Bandwidth > 0 {
		d += time.Duration(float64(n) / l.Bandwidth * float64(time.Second))
	}
	return d
}

// Machine is a set of link profiles plus the properties the experiments
// depend on (host page size, per-element datatype-engine cost).
type Machine struct {
	Name string
	// Net is the node-to-node interconnect.
	Net Link
	// Host is CPU<->GPU staging (NVLink on Summit).
	Host Link
	// Direct is GPUDirect RDMA (device memory straight to the NIC).
	Direct Link
	// Fault is the unified-memory page-fault service cost; bandwidth applies
	// to the page payload.
	Fault Link
	// PageSize is the host base page size in bytes (4 KiB on Theta x86/KNL,
	// 64 KiB on Summit Power9) — MemMap padding granularity.
	PageSize int
	// TypeElemCost is the modeled per-element overhead of the MPI derived-
	// datatype engine's interpretive pack loop, charged on top of the real
	// copy the engine performs. The paper measured MPI_Types up to 460×
	// slower than MemMap; interpretive per-element dispatch is the cause.
	TypeElemCost time.Duration
}

// ThetaKNL approximates a Theta node: Cray Aries (~1.3 µs latency, ~11 GB/s
// effective per-rank bandwidth), 4 KiB pages, no GPU.
func ThetaKNL() Machine {
	return Machine{
		Name:         "theta-knl",
		Net:          Link{Latency: 1300 * time.Nanosecond, Bandwidth: 11e9},
		PageSize:     4096,
		TypeElemCost: 6 * time.Nanosecond,
	}
}

// SummitV100 approximates a Summit node: EDR InfiniBand (~1.0 µs, ~12.5 GB/s
// per rank), NVLink host staging (~10 µs launch, 50 GB/s), GPUDirect RDMA,
// 64 KiB Power9 pages, and a batched page-fault service time of ~5 µs per
// contiguous run plus migration at NVLink bandwidth.
func SummitV100() Machine {
	return Machine{
		Name:         "summit-v100",
		Net:          Link{Latency: 1000 * time.Nanosecond, Bandwidth: 12.5e9},
		Host:         Link{Latency: 10 * time.Microsecond, Bandwidth: 50e9},
		Direct:       Link{Latency: 1700 * time.Nanosecond, Bandwidth: 16e9},
		Fault:        Link{Latency: 5 * time.Microsecond, Bandwidth: 40e9},
		PageSize:     65536,
		TypeElemCost: 25 * time.Nanosecond,
	}
}

// Local is a profile for functional runs where modeled time should be cheap
// and obviously synthetic: 1 µs latency, 10 GB/s, 4 KiB pages.
func Local() Machine {
	return Machine{
		Name:         "local",
		Net:          Link{Latency: time.Microsecond, Bandwidth: 10e9},
		Host:         Link{Latency: 5 * time.Microsecond, Bandwidth: 25e9},
		Direct:       Link{Latency: 2 * time.Microsecond, Bandwidth: 8e9},
		Fault:        Link{Latency: 5 * time.Microsecond, Bandwidth: 20e9},
		PageSize:     4096,
		TypeElemCost: 10 * time.Nanosecond,
	}
}

// ByName returns a machine profile by name ("theta-knl", "summit-v100",
// "local"), defaulting to Local for unknown names with ok=false.
func ByName(name string) (Machine, bool) {
	switch name {
	case "theta-knl", "theta", "knl":
		return ThetaKNL(), true
	case "summit-v100", "summit", "v100":
		return SummitV100(), true
	case "local", "":
		return Local(), true
	default:
		return Local(), false
	}
}

// Cost returns the modeled duration of moving n bytes over the given link
// kind of this machine.
func (m Machine) Cost(kind LinkKind, n int) time.Duration {
	switch kind {
	case Network:
		return m.Net.Cost(n)
	case HostDevice:
		return m.Host.Cost(n)
	case GPUDirect:
		return m.Direct.Cost(n)
	case PageMigration:
		return m.Fault.Cost(n)
	default:
		panic("netmodel: unknown link kind")
	}
}

// PagePad rounds n up to the machine's page size, the granularity at which
// MemMap views must be aligned. PagePadAt does the same for an explicit page
// size (used by the Fig. 18 page-size sweep).
func (m Machine) PagePad(n int) int { return PagePadAt(n, m.PageSize) }

// PagePadAt rounds n up to a multiple of pageSize.
func PagePadAt(n, pageSize int) int {
	if pageSize <= 0 {
		panic("netmodel: page size must be positive")
	}
	if n <= 0 {
		return 0
	}
	return (n + pageSize - 1) / pageSize * pageSize
}

// Meter accumulates modeled communication time and traffic for one rank.
// It is not safe for concurrent use; each rank owns its own meter.
type Meter struct {
	Machine  Machine
	Messages int           // number of transfers charged
	Bytes    int64         // payload bytes (including padding)
	Elapsed  time.Duration // total modeled time
}

// NewMeter returns a meter charging costs against machine m.
func NewMeter(m Machine) *Meter { return &Meter{Machine: m} }

// Charge records one transfer of n bytes over the given link and returns its
// modeled cost.
func (mt *Meter) Charge(kind LinkKind, n int) time.Duration {
	d := mt.Machine.Cost(kind, n)
	mt.Messages++
	mt.Bytes += int64(n)
	mt.Elapsed += d
	return d
}

// ChargeElems adds the datatype-engine per-element overhead for n elements.
func (mt *Meter) ChargeElems(n int) time.Duration {
	d := time.Duration(n) * mt.Machine.TypeElemCost
	mt.Elapsed += d
	return d
}

// Reset clears counters but keeps the machine profile.
func (mt *Meter) Reset() {
	mt.Messages, mt.Bytes, mt.Elapsed = 0, 0, 0
}

// Bandwidth returns the achieved modeled bandwidth in bytes/second
// (bytes / elapsed), or 0 if nothing was charged.
func (mt *Meter) Bandwidth() float64 {
	if mt.Elapsed <= 0 {
		return 0
	}
	return float64(mt.Bytes) / mt.Elapsed.Seconds()
}
