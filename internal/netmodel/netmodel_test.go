package netmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLinkCost(t *testing.T) {
	l := Link{Latency: time.Microsecond, Bandwidth: 1e9} // 1 GB/s
	if got := l.Cost(0); got != time.Microsecond {
		t.Errorf("zero-byte cost = %v, want latency only", got)
	}
	// 1000 bytes at 1 GB/s = 1 µs, plus 1 µs latency.
	if got := l.Cost(1000); got != 2*time.Microsecond {
		t.Errorf("1000B cost = %v, want 2µs", got)
	}
}

func TestLinkCostNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	Link{}.Cost(-1)
}

func TestLinkCostZeroBandwidth(t *testing.T) {
	l := Link{Latency: time.Millisecond}
	if got := l.Cost(1 << 20); got != time.Millisecond {
		t.Errorf("zero-bandwidth link charged %v for payload", got)
	}
}

func TestCostMonotonic(t *testing.T) {
	m := ThetaKNL()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.Cost(Network, x) <= m.Cost(Network, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfiles(t *testing.T) {
	theta := ThetaKNL()
	if theta.PageSize != 4096 {
		t.Errorf("Theta page size = %d, want 4096", theta.PageSize)
	}
	summit := SummitV100()
	if summit.PageSize != 65536 {
		t.Errorf("Summit page size = %d, want 65536", summit.PageSize)
	}
	// GPUDirect must beat staged host transfer plus a network message for
	// any message size (the CUDA-Aware advantage).
	for _, n := range []int{512, 4096, 1 << 20} {
		direct := summit.Cost(GPUDirect, n)
		staged := summit.Cost(HostDevice, n) + summit.Cost(Network, n)
		if direct >= staged {
			t.Errorf("n=%d: GPUDirect %v not cheaper than staged %v", n, direct, staged)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"theta-knl", "theta", "knl", "summit-v100", "summit", "v100", "local", ""} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("cray-ex"); ok {
		t.Error("unknown machine reported found")
	}
}

func TestLinkKindString(t *testing.T) {
	names := map[LinkKind]string{
		Network: "network", HostDevice: "host-device",
		GPUDirect: "gpudirect", PageMigration: "page-migration",
		LinkKind(99): "LinkKind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestPagePad(t *testing.T) {
	cases := []struct{ n, page, want int }{
		{0, 4096, 0},
		{1, 4096, 4096},
		{4096, 4096, 4096},
		{4097, 4096, 8192},
		{100, 65536, 65536},
		{-5, 4096, 0},
	}
	for _, c := range cases {
		if got := PagePadAt(c.n, c.page); got != c.want {
			t.Errorf("PagePadAt(%d,%d) = %d, want %d", c.n, c.page, got, c.want)
		}
	}
	m := SummitV100()
	if got := m.PagePad(100); got != 65536 {
		t.Errorf("Summit PagePad(100) = %d", got)
	}
}

func TestPagePadProperties(t *testing.T) {
	f := func(n uint16, pshift uint8) bool {
		page := 1 << (uint(pshift)%8 + 6) // 64..8192
		p := PagePadAt(int(n), page)
		return p >= int(n) && p%page == 0 && p < int(n)+page
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagePadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero page size did not panic")
		}
	}()
	PagePadAt(10, 0)
}

func TestMeter(t *testing.T) {
	mt := NewMeter(Local())
	d1 := mt.Charge(Network, 1000)
	d2 := mt.Charge(Network, 2000)
	if mt.Messages != 2 || mt.Bytes != 3000 {
		t.Errorf("meter counters: %+v", mt)
	}
	if mt.Elapsed != d1+d2 {
		t.Errorf("elapsed %v != %v", mt.Elapsed, d1+d2)
	}
	if mt.Bandwidth() <= 0 {
		t.Error("bandwidth not positive")
	}
	mt.Reset()
	if mt.Messages != 0 || mt.Bytes != 0 || mt.Elapsed != 0 {
		t.Error("reset incomplete")
	}
	if mt.Bandwidth() != 0 {
		t.Error("empty meter bandwidth not 0")
	}
	if mt.Machine.Name != "local" {
		t.Error("reset dropped machine")
	}
}

func TestMeterChargeElems(t *testing.T) {
	mt := NewMeter(Machine{TypeElemCost: 10 * time.Nanosecond})
	if got := mt.ChargeElems(100); got != time.Microsecond {
		t.Errorf("ChargeElems = %v, want 1µs", got)
	}
	if mt.Elapsed != time.Microsecond {
		t.Error("elapsed not accumulated")
	}
}

func TestMachineCostPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kind did not panic")
		}
	}()
	Local().Cost(LinkKind(42), 10)
}
