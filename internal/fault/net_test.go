package fault

import (
	"strings"
	"testing"
	"time"
)

// TestNetFrameNilSafety: the frame hook sits on the tcp transport's send
// hot path, so the disabled cases must be free of any verdict.
func TestNetFrameNilSafety(t *testing.T) {
	var in *Injector
	if in.HasNetFaults() {
		t.Error("nil injector claims net faults")
	}
	if v := in.NetFrame(0, 1); v != (NetVerdict{}) {
		t.Errorf("nil injector issued verdict %+v", v)
	}
	in = New(1).WithKill(0, 1)
	if in.HasNetFaults() {
		t.Error("kill-only injector claims net faults")
	}
	if v := in.NetFrame(0, 1); v != (NetVerdict{}) {
		t.Errorf("kill-only injector issued verdict %+v", v)
	}
}

// TestNetDropOrdinal: a drop clause fires on exactly the rank's nth
// outbound frame, counted across all peers, and on no other frame.
func TestNetDropOrdinal(t *testing.T) {
	in := New(1).WithNetDrop(0, 3)
	if !in.HasNetFaults() || !in.Enabled() {
		t.Fatal("net drop clause not visible to HasNetFaults/Enabled")
	}
	// Frames 1 and 2 go to different peers: the ordinal is per rank, not
	// per pair.
	if v := in.NetFrame(0, 1); v.Drop {
		t.Error("frame 1 dropped")
	}
	if v := in.NetFrame(0, 2); v.Drop {
		t.Error("frame 2 dropped")
	}
	if v := in.NetFrame(0, 1); !v.Drop || v.Dup {
		t.Errorf("frame 3 verdict %+v, want Drop", v)
	}
	if v := in.NetFrame(0, 1); v.Drop {
		t.Error("frame 4 dropped")
	}
	// Another rank's frames never match a rank=0 clause.
	in2 := New(1).WithNetDrop(0, 1)
	if v := in2.NetFrame(1, 0); v.Drop {
		t.Error("rank 1 frame matched a rank=0 clause")
	}
}

// TestNetDupAndWildcard: dup clauses share the drop ordinal machinery,
// and rank=* matches every rank with independent per-rank counters.
func TestNetDupAndWildcard(t *testing.T) {
	in := New(1).WithNetDup(AnyRank, 2)
	for rank := 0; rank < 3; rank++ {
		if v := in.NetFrame(rank, 9); v.Dup {
			t.Errorf("rank %d frame 1 duplicated", rank)
		}
	}
	for rank := 0; rank < 3; rank++ {
		if v := in.NetFrame(rank, 9); !v.Dup || v.Drop {
			t.Errorf("rank %d frame 2 verdict %+v, want Dup", rank, v)
		}
	}
}

// TestNetDelayDeterministic: same seed, same clause, same call sequence
// must produce the identical jittered delay sequence (replayability),
// each within mean±jitter.
func TestNetDelayDeterministic(t *testing.T) {
	mean, jitter := time.Millisecond, 0.5
	a := New(42).WithNetDelay(0, mean, jitter)
	b := New(42).WithNetDelay(0, mean, jitter)
	lo := time.Duration(float64(mean) * (1 - jitter))
	hi := time.Duration(float64(mean) * (1 + jitter))
	for i := 0; i < 16; i++ {
		va, vb := a.NetFrame(0, 1), b.NetFrame(0, 1)
		if va.Delay != vb.Delay {
			t.Fatalf("frame %d: delay diverged across same-seed injectors: %v vs %v", i+1, va.Delay, vb.Delay)
		}
		if va.Delay < lo || va.Delay > hi {
			t.Fatalf("frame %d: delay %v outside [%v, %v]", i+1, va.Delay, lo, hi)
		}
	}
}

// TestNetPartitionPairOrdinal: partition clauses count frames per
// directed (rank, peer) pair, so traffic to other peers must not consume
// the ordinal.
func TestNetPartitionPairOrdinal(t *testing.T) {
	in := New(1).WithNetPartition(0, 1, 2, 50*time.Millisecond)
	if v := in.NetFrame(0, 2); v.Partition != 0 {
		t.Error("frame to peer 2 severed the 0→1 link")
	}
	if v := in.NetFrame(0, 1); v.Partition != 0 {
		t.Error("first 0→1 frame severed (clause says second)")
	}
	if v := in.NetFrame(0, 2); v.Partition != 0 {
		t.Error("another peer-2 frame severed the 0→1 link")
	}
	if v := in.NetFrame(0, 1); v.Partition != 50*time.Millisecond {
		t.Errorf("second 0→1 frame partition %v, want 50ms", v.Partition)
	}
	if v := in.NetFrame(0, 1); v.Partition != 0 {
		t.Error("third 0→1 frame severed again")
	}
}

// TestParseNetClauses drives the spec grammar end to end for all four
// frame-layer kinds, including the nth and dur defaults.
func TestParseNetClauses(t *testing.T) {
	in := MustParse("netdrop:rank=1:nth=2,netdup:rank=2,netdelay:rank=0:mean=1ms:jitter=0.5,netpartition:rank=0:peer=1", 7)
	if !in.HasNetFaults() {
		t.Fatal("parsed net spec reports no net faults")
	}
	if v := in.NetFrame(1, 0); v.Drop {
		t.Error("netdrop nth=2 fired on frame 1")
	}
	if v := in.NetFrame(1, 0); !v.Drop {
		t.Error("netdrop nth=2 missed frame 2")
	}
	if v := in.NetFrame(2, 0); !v.Dup {
		t.Error("netdup default nth=1 missed the first frame")
	}
	v := in.NetFrame(0, 1)
	if v.Delay <= 0 {
		t.Errorf("netdelay yielded %v, want positive", v.Delay)
	}
	if v.Partition != 100*time.Millisecond {
		t.Errorf("netpartition default dur = %v, want 100ms", v.Partition)
	}
}

// TestParseNetErrors pins the rejection of malformed net clauses.
func TestParseNetErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"netdrop:rank=0:nth=0", "bad nth"},
		{"netdup:rank=0:nth=-3", "bad nth"},
		{"netdrop:rank=0:dur=1s", "unknown field"},
		{"netdelay:rank=0", "needs mean"},
		{"netdelay:rank=0:mean=1ms:jitter=2", "bad jitter"},
		{"netpartition:rank=0:peer=1:dur=soon", "bad dur"},
		{"netpartition:rank=0:peer=-2", "bad rank"},
		{"netsplit:rank=0", "netdrop, netdup, netdelay, netpartition"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", tc.spec)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error %q lacks %q", tc.spec, err, tc.want)
		}
	}
}
