package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse compiles a fault spec into an Injector. The grammar is a
// comma-separated list of clauses; each clause is a kind followed by
// colon-separated key=value fields:
//
//	delay:rank=*:mean=200us[:jitter=0.5]   per-send delay, ±jitter fraction
//	stall:rank=0:nth=5:dur=2s              one-shot stall before send #5
//	panic:rank=1:step=3                    panic rank 1 at step 3
//	mapfail:rank=2[:step=4]                degrade MemMap (alloc time, or step 4)
//	allocfail:rank=2                       fail plan compile on rank 2
//	corrupt:rank=1:nth=3[:flips=2]         flip bytes of rank 1's 3rd send in flight
//	kill:rank=3[:nth=2]                    SIGKILL the rank's process at its 2nd send
//	exit:rank=3:code=7[:nth=2]             exit the rank's process with status 7
//	netdrop:rank=0:nth=4                   drop the rank's 4th outbound frame (tcp)
//	netdup:rank=0:nth=4                    duplicate the rank's 4th outbound frame (tcp)
//	netdelay:rank=*:mean=1ms[:jitter=0.5]  per-frame delay, ±jitter fraction (tcp)
//	netpartition:rank=0:peer=1:nth=3[:dur=100ms]  sever the 0→1 link before frame 3 (tcp)
//
// rank accepts a non-negative integer or * (every rank); kill and exit
// require a concrete rank — killing every worker leaves nothing to
// recover. Durations use Go syntax (200us, 1ms, 2s). An empty spec yields
// a nil injector: injection fully disabled, hooks cost one nil check.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := New(seed)
	in.spec = spec
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := in.parseClause(clause); err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
	}
	if !in.Enabled() {
		return nil, fmt.Errorf("fault: spec %q holds no clauses", spec)
	}
	return in, nil
}

// MustParse is Parse for tests and tables of known-good specs.
func MustParse(spec string, seed int64) *Injector {
	in, err := Parse(spec, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// fields parses the key=value fields after the kind, rejecting duplicates
// and unknown keys (allowed lists what the kind accepts).
func fields(parts []string, allowed ...string) (map[string]string, error) {
	out := map[string]string{}
	for _, p := range parts {
		k, v, ok := strings.Cut(p, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("field %q is not key=value", p)
		}
		ok = false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown field %q (accepts %s)", k, strings.Join(allowed, ", "))
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("duplicate field %q", k)
		}
		out[k] = v
	}
	return out, nil
}

func parseRank(v string) (int, error) {
	if v == "" || v == "*" {
		return AnyRank, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad rank %q (non-negative integer or *)", v)
	}
	return n, nil
}

func parseDur(v, field string) (time.Duration, error) {
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad %s %q (positive Go duration)", field, v)
	}
	return d, nil
}

func (in *Injector) parseClause(clause string) error {
	parts := strings.Split(clause, ":")
	kind, rest := Kind(parts[0]), parts[1:]
	switch kind {
	case KindDelay:
		f, err := fields(rest, "rank", "mean", "jitter")
		if err != nil {
			return err
		}
		rank, err := parseRank(f["rank"])
		if err != nil {
			return err
		}
		if f["mean"] == "" {
			return fmt.Errorf("delay needs mean=<duration>")
		}
		mean, err := parseDur(f["mean"], "mean")
		if err != nil {
			return err
		}
		jitter := 0.0
		if v := f["jitter"]; v != "" {
			jitter, err = strconv.ParseFloat(v, 64)
			if err != nil || jitter < 0 || jitter > 1 {
				return fmt.Errorf("bad jitter %q (fraction in [0,1])", v)
			}
		}
		in.WithDelay(rank, mean, jitter)
	case KindStall:
		f, err := fields(rest, "rank", "nth", "dur")
		if err != nil {
			return err
		}
		rank, err := parseRank(f["rank"])
		if err != nil {
			return err
		}
		nth := int64(1)
		if v := f["nth"]; v != "" {
			nth, err = strconv.ParseInt(v, 10, 64)
			if err != nil || nth < 1 {
				return fmt.Errorf("bad nth %q (1-based send index)", v)
			}
		}
		if f["dur"] == "" {
			return fmt.Errorf("stall needs dur=<duration>")
		}
		dur, err := parseDur(f["dur"], "dur")
		if err != nil {
			return err
		}
		in.WithStall(rank, nth, dur)
	case KindPanic:
		f, err := fields(rest, "rank", "step")
		if err != nil {
			return err
		}
		rank, err := parseRank(f["rank"])
		if err != nil {
			return err
		}
		step := 0
		if v := f["step"]; v != "" {
			step, err = strconv.Atoi(v)
			if err != nil || step < 0 {
				return fmt.Errorf("bad step %q (non-negative integer)", v)
			}
		}
		in.WithPanic(rank, step)
	case KindMapFail:
		f, err := fields(rest, "rank", "step")
		if err != nil {
			return err
		}
		rank, err := parseRank(f["rank"])
		if err != nil {
			return err
		}
		step := -1 // at allocation
		if v := f["step"]; v != "" {
			step, err = strconv.Atoi(v)
			if err != nil || step < 0 {
				return fmt.Errorf("bad step %q (non-negative integer)", v)
			}
		}
		in.WithMapFail(rank, step)
	case KindAllocFail:
		f, err := fields(rest, "rank")
		if err != nil {
			return err
		}
		rank, err := parseRank(f["rank"])
		if err != nil {
			return err
		}
		in.WithAllocFail(rank)
	case KindCorrupt:
		f, err := fields(rest, "rank", "nth", "flips")
		if err != nil {
			return err
		}
		rank, err := parseRank(f["rank"])
		if err != nil {
			return err
		}
		nth := int64(1)
		if v := f["nth"]; v != "" {
			nth, err = strconv.ParseInt(v, 10, 64)
			if err != nil || nth < 1 {
				return fmt.Errorf("bad nth %q (1-based send index)", v)
			}
		}
		flips := 1
		if v := f["flips"]; v != "" {
			flips, err = strconv.Atoi(v)
			if err != nil || flips < 1 {
				return fmt.Errorf("bad flips %q (positive byte count)", v)
			}
		}
		in.WithCorrupt(rank, nth, flips)
	case KindNetDrop, KindNetDup:
		f, err := fields(rest, "rank", "nth")
		if err != nil {
			return err
		}
		rank, err := parseRank(f["rank"])
		if err != nil {
			return err
		}
		nth := int64(1)
		if v := f["nth"]; v != "" {
			nth, err = strconv.ParseInt(v, 10, 64)
			if err != nil || nth < 1 {
				return fmt.Errorf("bad nth %q (1-based frame index)", v)
			}
		}
		if kind == KindNetDrop {
			in.WithNetDrop(rank, nth)
		} else {
			in.WithNetDup(rank, nth)
		}
	case KindNetDelay:
		f, err := fields(rest, "rank", "mean", "jitter")
		if err != nil {
			return err
		}
		rank, err := parseRank(f["rank"])
		if err != nil {
			return err
		}
		if f["mean"] == "" {
			return fmt.Errorf("netdelay needs mean=<duration>")
		}
		mean, err := parseDur(f["mean"], "mean")
		if err != nil {
			return err
		}
		jitter := 0.0
		if v := f["jitter"]; v != "" {
			jitter, err = strconv.ParseFloat(v, 64)
			if err != nil || jitter < 0 || jitter > 1 {
				return fmt.Errorf("bad jitter %q (fraction in [0,1])", v)
			}
		}
		in.WithNetDelay(rank, mean, jitter)
	case KindNetPartition:
		f, err := fields(rest, "rank", "peer", "nth", "dur")
		if err != nil {
			return err
		}
		rank, err := parseRank(f["rank"])
		if err != nil {
			return err
		}
		peer, err := parseRank(f["peer"])
		if err != nil {
			return err
		}
		nth := int64(1)
		if v := f["nth"]; v != "" {
			nth, err = strconv.ParseInt(v, 10, 64)
			if err != nil || nth < 1 {
				return fmt.Errorf("bad nth %q (1-based frame index)", v)
			}
		}
		dur := 100 * time.Millisecond
		if v := f["dur"]; v != "" {
			dur, err = parseDur(v, "dur")
			if err != nil {
				return err
			}
		}
		in.WithNetPartition(rank, peer, nth, dur)
	case KindKill, KindExit:
		allowed := []string{"rank", "nth"}
		if kind == KindExit {
			allowed = append(allowed, "code")
		}
		f, err := fields(rest, allowed...)
		if err != nil {
			return err
		}
		rank, err := parseRank(f["rank"])
		if err != nil {
			return err
		}
		if rank == AnyRank {
			return fmt.Errorf("%s needs a concrete rank (rank=* would kill every worker)", kind)
		}
		nth := int64(1)
		if v := f["nth"]; v != "" {
			nth, err = strconv.ParseInt(v, 10, 64)
			if err != nil || nth < 1 {
				return fmt.Errorf("bad nth %q (1-based send index)", v)
			}
		}
		if kind == KindKill {
			in.WithKill(rank, nth)
			return nil
		}
		if f["code"] == "" {
			return fmt.Errorf("exit needs code=<nonzero status>")
		}
		code, err := strconv.Atoi(f["code"])
		if err != nil || code < 1 || code > 255 {
			return fmt.Errorf("bad code %q (exit status in [1,255])", f["code"])
		}
		in.WithExit(rank, nth, code)
	default:
		return fmt.Errorf("unknown kind %q (delay, stall, panic, mapfail, allocfail, corrupt, kill, exit, netdrop, netdup, netdelay, netpartition)", parts[0])
	}
	return nil
}
