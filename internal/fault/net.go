package fault

import "time"

// Network-level fault kinds, consulted by connection-oriented transports
// (tcp) once per outbound data frame. Frame ordinals are deterministic
// program points exactly like send ordinals: the rank's Nth frame is the
// same frame in every run of the same program, so drop/dup/partition
// clauses reproduce bit-identically.
const (
	// KindNetDrop silently discards the rank's Nth outbound frame after
	// the wire sequence was assigned, so the receiver observes a sequence
	// gap and fails loud (lost-frame abort) instead of hanging.
	KindNetDrop Kind = "netdrop"
	// KindNetDup writes the rank's Nth outbound frame twice; the receiver
	// must recognise the replayed wire sequence and drop the duplicate
	// (exactly-once delivery).
	KindNetDup Kind = "netdup"
	// KindNetDelay sleeps before every outbound frame of the rank: mean
	// duration ± jitter, from the rank's deterministic PRNG.
	KindNetDelay Kind = "netdelay"
	// KindNetPartition severs the established connection to one peer just
	// before the rank's Nth frame to that peer and holds the link down for
	// a duration; the transport must redial (backoff budget) and the frame
	// must still arrive exactly once.
	KindNetPartition Kind = "netpartition"
)

// netDropClause / netDupClause: act on the rank's nth outbound frame
// (1-based, counted across all peers).
type netDropClause struct {
	rank int
	nth  int64
	dup  bool // duplicate instead of drop
}

// netDelayClause: per-frame delay with jitter.
type netDelayClause struct {
	rank   int
	mean   time.Duration
	jitter float64
}

// netPartClause: sever the rank→peer link before the rank's nth frame to
// that peer (1-based, counted per pair) and hold it down for dur.
type netPartClause struct {
	rank, peer int
	nth        int64
	dur        time.Duration
}

// netPairKey counts frames per directed (rank, peer) pair for partition
// matching.
type netPairKey struct{ rank, peer int }

// NetVerdict is the injector's ruling on one outbound frame. Zero value:
// deliver normally. Order of application at the transport: Delay sleep,
// Partition (sever + hold-down), then Drop or Dup.
type NetVerdict struct {
	Drop      bool
	Dup       bool
	Delay     time.Duration
	Partition time.Duration
}

// HasNetFaults reports whether any frame-layer clause is present. These
// clauses act below message matching, so only connection-oriented
// transports (tcp) consult them; drivers use this to reject the spec on
// chan/shmem worlds where it would silently do nothing.
func (in *Injector) HasNetFaults() bool {
	return in != nil && len(in.netDrops)+len(in.netDelays)+len(in.netParts) > 0
}

// NetFrame decides the fate of the rank's next outbound frame to peer,
// advancing the rank's frame ordinal (and the rank→peer pair ordinal).
// The transport calls it once per data frame, after assigning the wire
// sequence, so a dropped frame still consumes a sequence number and the
// receiver detects the loss. Nil-safe; returns the zero verdict on the
// hot path when nothing is configured.
func (in *Injector) NetFrame(rank, peer int) NetVerdict {
	var v NetVerdict
	if in == nil {
		return v
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.netDrops)+len(in.netDelays)+len(in.netParts) == 0 {
		return v
	}
	in.netFrames[rank]++
	nth := in.netFrames[rank]
	pk := netPairKey{rank, peer}
	in.netPairFrames[pk]++
	pairNth := in.netPairFrames[pk]
	for _, c := range in.netDrops {
		if !matchRank(c.rank, rank) || c.nth != nth {
			continue
		}
		if c.dup {
			v.Dup = true
			in.countLocked(KindNetDup, rank)
		} else {
			v.Drop = true
			in.countLocked(KindNetDrop, rank)
		}
	}
	for _, c := range in.netDelays {
		if !matchRank(c.rank, rank) {
			continue
		}
		d := c.mean
		if c.jitter > 0 {
			f := 1 + c.jitter*(2*in.rngLocked(rank).Float64()-1)
			d = time.Duration(float64(d) * f)
		}
		if d > 0 {
			v.Delay += d
			in.countLocked(KindNetDelay, rank)
		}
	}
	for _, c := range in.netParts {
		if matchRank(c.rank, rank) && matchRank(c.peer, peer) && c.nth == pairNth {
			v.Partition += c.dur
			in.countLocked(KindNetPartition, rank)
		}
	}
	return v
}

// WithNetDrop adds a frame-drop clause at the rank's nth outbound frame
// (1-based, counted across all peers).
func (in *Injector) WithNetDrop(rank int, nth int64) *Injector {
	in.netDrops = append(in.netDrops, netDropClause{rank: rank, nth: nth})
	return in
}

// WithNetDup adds a frame-duplication clause at the rank's nth outbound
// frame (1-based, counted across all peers).
func (in *Injector) WithNetDup(rank int, nth int64) *Injector {
	in.netDrops = append(in.netDrops, netDropClause{rank: rank, nth: nth, dup: true})
	return in
}

// WithNetDelay adds a per-frame delay clause (±jitter fraction of mean).
func (in *Injector) WithNetDelay(rank int, mean time.Duration, jitter float64) *Injector {
	in.netDelays = append(in.netDelays, netDelayClause{rank: rank, mean: mean, jitter: jitter})
	return in
}

// WithNetPartition adds a link-sever clause before the rank's nth frame
// to peer (1-based, counted per directed pair), holding the link down for
// dur before the transport may redial.
func (in *Injector) WithNetPartition(rank, peer int, nth int64, dur time.Duration) *Injector {
	in.netParts = append(in.netParts, netPartClause{rank: rank, peer: peer, nth: nth, dur: dur})
	return in
}
