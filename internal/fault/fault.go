// Package fault is a deterministic, seedable fault injector for the
// in-process exchange runtime. It exists so the fault-tolerance machinery —
// watchdog stall detection, abort propagation, MemMap degradation — can be
// exercised on demand instead of waiting for a real plan bug: a run is given
// an Injector compiled from a compact spec string, and the instrumented
// layers (mpi sends, the harness step loop, storage allocation, plan
// compilation) consult it at fixed hook points.
//
// Determinism: every random choice (delay jitter) comes from a per-rank
// PRNG seeded from (seed, rank), and every one-shot trigger (send stall,
// step panic, map failure) is keyed to deterministic program points (the
// rank's Nth send, the rank's Sth step). Two runs of the same program with
// the same spec and seed inject exactly the same faults, which is what lets
// the soak harness assert bit-identical checksums under injection.
//
// A nil *Injector is valid and injects nothing; every hook is nil-safe, so
// instrumented call sites pay only a nil pointer check when injection is
// disabled.
package fault

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"syscall"
	"time"

	"github.com/bricklab/brick/internal/metrics"
)

// Kind names one fault family, used both in spec clauses and as the kind
// label of the fault_injected_total metric.
type Kind string

// The injectable fault kinds.
const (
	// KindDelay sleeps before posting each send: mean duration ± jitter.
	KindDelay Kind = "delay"
	// KindStall sleeps once, for a long time, before the rank's Nth send —
	// the one-shot send stall that a watchdog must distinguish from a
	// deadlock (or, with a stall longer than the deadline, must report).
	KindStall Kind = "stall"
	// KindPanic panics the rank at the start of step S of the harness loop
	// (steps count from 0 and include warmup).
	KindPanic Kind = "panic"
	// KindMapFail forces MemMap storage/view mapping to fail: without a
	// step, the rank's arena allocation degrades to an unmapped (heap)
	// arena; with step=S, the rank's ExchangeView rebuilds its mapped send
	// views as copy windows at step S (mid-run degradation).
	KindMapFail Kind = "mapfail"
	// KindAllocFail forces plan compilation to fail with an error on the
	// rank, exercising the error-abort path during exchanger setup.
	KindAllocFail Kind = "allocfail"
	// KindCorrupt flips bytes in the payload of the rank's Nth send as it is
	// delivered — silent data corruption "on the wire". The sender's buffer
	// is untouched; the receiver gets flipped bytes. With receive-side CRC
	// verification enabled (mpi.World.SetVerifyCRC) the corruption is
	// detected at delivery and aborts the world; without it the corruption
	// propagates silently into the results.
	KindCorrupt Kind = "corrupt"
	// KindKill raises SIGKILL on the calling process just before the rank's
	// Nth send — a hard worker death (OOM-killer shaped) that only the
	// cross-process supervisor (internal/mpi/proc) can observe and recover.
	// Meaningless on in-process transports, where it would kill the whole
	// world including the supervisor; the harness rejects it there.
	KindKill Kind = "kill"
	// KindExit exits the calling process with a chosen nonzero status just
	// before the rank's Nth send — the plain-exit sibling of kill, same
	// supervision requirement.
	KindExit Kind = "exit"
)

// AnyRank is the rank filter meaning "every rank" (spec: rank=*).
const AnyRank = -1

// delayClause: per-send delay with jitter.
type delayClause struct {
	rank   int // AnyRank or a concrete rank
	mean   time.Duration
	jitter float64 // fraction of mean, uniform in [-jitter, +jitter]
}

// stallClause: one-shot sleep before the rank's nth send (1-based).
type stallClause struct {
	rank int
	nth  int64
	dur  time.Duration
}

// stepClause: fires at one (rank, step) point. step < 0 means
// "at allocation" for mapfail clauses.
type stepClause struct {
	rank int
	step int
}

// corruptClause: flip bytes in the rank's nth posted send (1-based).
type corruptClause struct {
	rank  int
	nth   int64
	flips int // bytes to flip (>= 1)
}

// procClause: kill or exit the process hosting the rank at its nth send
// (1-based).
type procClause struct {
	rank int
	nth  int64
	code int  // exit status for exit clauses
	exit bool // os.Exit(code) instead of SIGKILL
}

// ByteFlip is one injected payload corruption: XOR the byte at offset Off
// (into the payload's little-endian float64 bytes) with the non-zero Mask.
type ByteFlip struct {
	Off  int
	Mask byte
}

// Injector holds a parsed fault plan plus the per-run mutable state (send
// counters, PRNGs, metric caches). An Injector is single-run: build a fresh
// one per world so one-shot faults and counters start clean.
type Injector struct {
	spec string
	seed int64

	delays     []delayClause
	stalls     []stallClause
	panics     []stepClause
	mapFails   []stepClause // step < 0: at allocation
	allocFails []stepClause // step unused
	corrupts   []corruptClause
	procs      []procClause
	netDrops   []netDropClause // drop and dup clauses (see net.go)
	netDelays  []netDelayClause
	netParts   []netPartClause

	mu            sync.Mutex
	rngs          map[int]*rand.Rand
	netFrames     map[int]int64 // outbound frame ordinal per rank (net.go)
	netPairFrames map[netPairKey]int64
	sends         map[int]int64
	panicFired    map[panicKey]bool // one-shot: a crash is an event, not a property of the step
	procSkips     map[int]int       // per-rank process-fault matches to swallow (respawned lives)
	reg           *metrics.Registry
	counters      map[counterKey]*metrics.Counter
}

// panicKey identifies one fired panic: the clause index plus the concrete
// rank it fired on (a rank=* clause fires once per rank).
type panicKey struct {
	clause int
	rank   int
}

type counterKey struct {
	kind Kind
	rank int
}

// New builds an empty injector (no faults); useful as a base for the With*
// builders in tests. Parse is the production constructor.
func New(seed int64) *Injector {
	return &Injector{
		seed: seed, rngs: map[int]*rand.Rand{},
		sends: map[int]int64{}, panicFired: map[panicKey]bool{},
		procSkips: map[int]int{}, netFrames: map[int]int64{},
		netPairFrames: map[netPairKey]int64{},
	}
}

// Enabled reports whether the injector holds any fault clause.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	return len(in.delays)+len(in.stalls)+len(in.panics)+len(in.mapFails)+
		len(in.allocFails)+len(in.corrupts)+len(in.procs)+
		len(in.netDrops)+len(in.netDelays)+len(in.netParts) > 0
}

// HasProcessFaults reports whether any kill/exit clause is present. These
// clauses kill the calling OS process, so only supervised (cross-process)
// runs can arm them; drivers use this to reject them elsewhere.
func (in *Injector) HasProcessFaults() bool {
	return in != nil && len(in.procs) > 0
}

// Seed returns the PRNG seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// String returns the spec the injector was parsed from (empty for a nil or
// hand-built injector).
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	return in.spec
}

// SetMetrics attaches a registry; every injected fault is counted as
// fault_injected_total{kind,rank}. Nil disables counting (the default).
func (in *Injector) SetMetrics(reg *metrics.Registry) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.reg = reg
	in.counters = map[counterKey]*metrics.Counter{}
	in.mu.Unlock()
	if reg != nil {
		reg.Describe(metrics.FaultInjectedTotal, "Faults injected by the internal/fault injector (labels: kind, rank).")
	}
}

// countLocked increments fault_injected_total{kind,rank}; in.mu held.
func (in *Injector) countLocked(kind Kind, rank int) {
	if in.reg == nil {
		return
	}
	key := counterKey{kind, rank}
	c := in.counters[key]
	if c == nil {
		c = in.reg.Counter(metrics.FaultInjectedTotal, metrics.Labels{
			"kind": string(kind), "rank": strconv.Itoa(rank)})
		in.counters[key] = c
	}
	c.Add(1)
}

func matchRank(filter, rank int) bool { return filter == AnyRank || filter == rank }

// rngLocked returns the rank's deterministic PRNG; in.mu held.
func (in *Injector) rngLocked(rank int) *rand.Rand {
	r := in.rngs[rank]
	if r == nil {
		// Mix the rank into the seed with an odd constant so adjacent ranks
		// do not produce correlated streams.
		r = rand.New(rand.NewSource(in.seed ^ (int64(rank)+1)*0x5851F42D4C957F2D))
		in.rngs[rank] = r
	}
	return r
}

// SendDelay returns how long the rank's next send must sleep before being
// posted: the sum of matching delay clauses (with deterministic jitter)
// plus, exactly once, a matching one-shot stall. The caller sleeps; the
// injector only decides. Returns 0 when nothing is configured for the rank.
func (in *Injector) SendDelay(rank int) time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sends[rank]++
	nth := in.sends[rank]
	var total time.Duration
	for _, c := range in.delays {
		if !matchRank(c.rank, rank) {
			continue
		}
		d := c.mean
		if c.jitter > 0 {
			f := 1 + c.jitter*(2*in.rngLocked(rank).Float64()-1)
			d = time.Duration(float64(d) * f)
		}
		if d > 0 {
			total += d
			in.countLocked(KindDelay, rank)
		}
	}
	for _, c := range in.stalls {
		if matchRank(c.rank, rank) && c.nth == nth {
			total += c.dur
			in.countLocked(KindStall, rank)
		}
	}
	return total
}

// StepPanic panics (with a diagnostic naming the rank and step) when a
// panic clause matches; the harness calls it at the top of every step.
// Each clause fires at most once per rank per Injector: a crash is an
// event, not a property of the step, so a respawned rank replaying the same
// step after checkpoint recovery does not re-panic.
func (in *Injector) StepPanic(rank, step int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	for i, c := range in.panics {
		key := panicKey{clause: i, rank: rank}
		if matchRank(c.rank, rank) && c.step == step && !in.panicFired[key] {
			in.panicFired[key] = true
			in.countLocked(KindPanic, rank)
			in.mu.Unlock()
			panic(fmt.Sprintf("fault: injected panic on rank %d at step %d", rank, step))
		}
	}
	in.mu.Unlock()
}

// CorruptSend decides, at send-posting time, whether the rank's next send
// (its Nth, by the same cumulative counter SendDelay advances) must be
// corrupted in flight, and returns the byte flips to apply to the receive
// buffer after delivery's copy. elems is the payload length in float64s.
// Offsets and masks come from the rank's deterministic PRNG, so the same
// spec and seed corrupt the same bytes of the same message twice. A clause
// is keyed to one send ordinal, so it fires at most once per rank — a
// recovered run replaying past the ordinal is not re-corrupted. Returns nil
// (no corruption) on the hot path at the cost of a nil check.
//
// Call order matters: SendDelay increments the rank's send counter, so the
// mpi layer calls SendDelay first, then CorruptSend for the same send.
func (in *Injector) CorruptSend(rank, elems int) []ByteFlip {
	if in == nil || elems <= 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.corrupts) == 0 {
		return nil
	}
	nth := in.sends[rank]
	var out []ByteFlip
	for _, c := range in.corrupts {
		if !matchRank(c.rank, rank) || c.nth != nth {
			continue
		}
		rng := in.rngLocked(rank)
		for i := 0; i < c.flips; i++ {
			out = append(out, ByteFlip{
				Off:  rng.Intn(8 * elems),
				Mask: byte(1 + rng.Intn(255)), // non-zero: the flip always changes the byte
			})
		}
		in.countLocked(KindCorrupt, rank)
	}
	return out
}

// SkipProcessFaults arms respawn determinism: the next n process-fault
// matches on the rank are swallowed instead of fired. A respawned worker
// calls it with its incarnation number — each previous life died to
// exactly one firing, so skipping that many replays lets the new life run
// past the faults that already happened and reach any later clause (or
// finish).
func (in *Injector) SkipProcessFaults(rank, n int) {
	if in == nil || n <= 0 {
		return
	}
	in.mu.Lock()
	in.procSkips[rank] += n
	in.mu.Unlock()
}

// ProcessFault kills the calling process — SIGKILL for kill clauses, a
// plain exit for exit clauses — when one matches the rank's current send
// ordinal (the cumulative counter SendDelay advances; the mpi layer calls
// SendDelay first, then ProcessFault, for the same send). It returns
// normally when nothing matches. Deaths are deterministic program points,
// like stalls and corruption, so a supervised run dies at the same send
// every time.
func (in *Injector) ProcessFault(rank int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	if len(in.procs) == 0 {
		in.mu.Unlock()
		return
	}
	nth := in.sends[rank]
	for _, c := range in.procs {
		if !matchRank(c.rank, rank) || c.nth != nth {
			continue
		}
		if in.procSkips[rank] > 0 {
			in.procSkips[rank]--
			continue
		}
		kind := KindKill
		if c.exit {
			kind = KindExit
		}
		in.countLocked(kind, rank)
		in.mu.Unlock()
		if c.exit {
			os.Exit(c.code)
		}
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		// SIGKILL is not deliverable-to-self synchronously in every
		// runtime state; block until it lands rather than return and
		// let the send proceed.
		select {}
	}
	in.mu.Unlock()
}

// MapFailAtAlloc reports whether the rank's MemMap arena allocation must
// degrade to an unmapped (heap) arena — a mapfail clause without a step.
func (in *Injector) MapFailAtAlloc(rank int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, c := range in.mapFails {
		if matchRank(c.rank, rank) && c.step < 0 {
			in.countLocked(KindMapFail, rank)
			return true
		}
	}
	return false
}

// DegradeAtStep reports whether the rank's mapped exchange views must be
// rebuilt as copy windows at this step — a mapfail clause with step=S.
func (in *Injector) DegradeAtStep(rank, step int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, c := range in.mapFails {
		if matchRank(c.rank, rank) && c.step == step {
			in.countLocked(KindMapFail, rank)
			return true
		}
	}
	return false
}

// AllocFail reports whether plan compilation on the rank must fail with an
// injected error.
func (in *Injector) AllocFail(rank int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, c := range in.allocFails {
		if matchRank(c.rank, rank) {
			in.countLocked(KindAllocFail, rank)
			return true
		}
	}
	return false
}

// Builders for tests and the soak harness (programmatic alternatives to
// Parse; each returns the receiver for chaining).

// WithDelay adds a per-send delay clause.
func (in *Injector) WithDelay(rank int, mean time.Duration, jitter float64) *Injector {
	in.delays = append(in.delays, delayClause{rank: rank, mean: mean, jitter: jitter})
	return in
}

// WithStall adds a one-shot stall before the rank's nth send (1-based).
func (in *Injector) WithStall(rank int, nth int64, dur time.Duration) *Injector {
	in.stalls = append(in.stalls, stallClause{rank: rank, nth: nth, dur: dur})
	return in
}

// WithPanic adds a rank-panic clause at the given step.
func (in *Injector) WithPanic(rank, step int) *Injector {
	in.panics = append(in.panics, stepClause{rank: rank, step: step})
	return in
}

// WithMapFail adds a map-failure clause; step < 0 means at allocation.
func (in *Injector) WithMapFail(rank, step int) *Injector {
	in.mapFails = append(in.mapFails, stepClause{rank: rank, step: step})
	return in
}

// WithAllocFail adds a plan-compile allocation-failure clause.
func (in *Injector) WithAllocFail(rank int) *Injector {
	in.allocFails = append(in.allocFails, stepClause{rank: rank, step: -1})
	return in
}

// WithCorrupt adds a payload-corruption clause: flip `flips` bytes of the
// rank's nth send (1-based) in flight.
func (in *Injector) WithCorrupt(rank int, nth int64, flips int) *Injector {
	if flips < 1 {
		flips = 1
	}
	in.corrupts = append(in.corrupts, corruptClause{rank: rank, nth: nth, flips: flips})
	return in
}

// WithKill adds a SIGKILL-self clause at the rank's nth send (1-based).
func (in *Injector) WithKill(rank int, nth int64) *Injector {
	in.procs = append(in.procs, procClause{rank: rank, nth: nth})
	return in
}

// WithExit adds an exit-self clause (status code) at the rank's nth send.
func (in *Injector) WithExit(rank int, nth int64, code int) *Injector {
	in.procs = append(in.procs, procClause{rank: rank, nth: nth, code: code, exit: true})
	return in
}
