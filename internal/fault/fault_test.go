package fault

import (
	"strings"
	"testing"
	"time"

	"github.com/bricklab/brick/internal/metrics"
)

func TestParseEmptyDisablesInjection(t *testing.T) {
	in, err := Parse("", 1)
	if err != nil || in != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil, nil", in, err)
	}
	// Every hook must be nil-safe.
	if in.Enabled() || in.SendDelay(0) != 0 || in.MapFailAtAlloc(0) ||
		in.DegradeAtStep(0, 0) || in.AllocFail(0) || in.Seed() != 0 || in.String() != "" {
		t.Error("nil injector must inject nothing")
	}
	in.StepPanic(0, 0) // must not panic
	in.SetMetrics(nil) // must not crash
	in.ProcessFault(0) // must not kill the test binary
	in.SkipProcessFaults(0, 1)
	if in.HasProcessFaults() {
		t.Error("nil injector claims process faults")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nonsense:rank=0",
		"delay:rank=0",                  // missing mean
		"delay:rank=0:mean=banana",      // bad duration
		"delay:rank=0:mean=1ms:nth=2",   // unknown field for kind
		"delay:rank=-2:mean=1ms",        // bad rank
		"delay:rank=0:mean=1ms:mean=2s", // duplicate field
		"stall:rank=0",                  // missing dur
		"stall:rank=0:nth=0:dur=1s",     // nth is 1-based
		"panic:rank=0:step=-1",
		"mapfail:rank=0:step=x",
		"delay:rank=0:mean=1ms:jitter=2", // jitter out of range
		"  ,  ,  ",                       // clauses but all empty
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "delay:rank=*:mean=200us:jitter=0.5,stall:rank=0:nth=5:dur=2s,panic:rank=1:step=3,mapfail:rank=2,mapfail:rank=3:step=4,allocfail:rank=2"
	in := MustParse(spec, 42)
	if !in.Enabled() || in.Seed() != 42 || in.String() != spec {
		t.Fatalf("round trip lost state: %v", in)
	}
	if len(in.delays) != 1 || len(in.stalls) != 1 || len(in.panics) != 1 ||
		len(in.mapFails) != 2 || len(in.allocFails) != 1 {
		t.Fatalf("clause counts wrong: %+v", in)
	}
}

func TestDelayDeterminism(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		in := MustParse("delay:rank=*:mean=1ms:jitter=0.5", seed)
		var out []time.Duration
		for i := 0; i < 16; i++ {
			out = append(out, in.SendDelay(3))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("send %d: %v != %v with equal seeds", i, a[i], b[i])
		}
		if a[i] < 500*time.Microsecond || a[i] > 1500*time.Microsecond {
			t.Errorf("send %d: delay %v outside mean±jitter", i, a[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

func TestDelayRankFilter(t *testing.T) {
	in := MustParse("delay:rank=1:mean=1ms", 1)
	if d := in.SendDelay(0); d != 0 {
		t.Errorf("rank 0 delayed %v despite rank=1 filter", d)
	}
	if d := in.SendDelay(1); d != time.Millisecond {
		t.Errorf("rank 1 delay = %v, want 1ms", d)
	}
}

func TestStallFiresOnceAtNthSend(t *testing.T) {
	in := MustParse("stall:rank=0:nth=3:dur=1s", 1)
	for i := 1; i <= 5; i++ {
		d := in.SendDelay(0)
		if i == 3 && d != time.Second {
			t.Errorf("send %d: delay %v, want 1s stall", i, d)
		}
		if i != 3 && d != 0 {
			t.Errorf("send %d: unexpected delay %v", i, d)
		}
	}
	if d := in.SendDelay(1); d != 0 {
		t.Errorf("other rank stalled %v", d)
	}
}

func TestStepPanic(t *testing.T) {
	in := MustParse("panic:rank=1:step=3", 1)
	in.StepPanic(1, 2) // wrong step: no panic
	in.StepPanic(0, 3) // wrong rank: no panic
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no injected panic")
		}
		msg, _ := p.(string)
		if !strings.Contains(msg, "rank 1") || !strings.Contains(msg, "step 3") {
			t.Errorf("panic message %q lacks rank/step", msg)
		}
	}()
	in.StepPanic(1, 3)
}

func TestMapFailAllocVsStep(t *testing.T) {
	in := MustParse("mapfail:rank=1,mapfail:rank=2:step=4", 1)
	if !in.MapFailAtAlloc(1) || in.MapFailAtAlloc(2) || in.MapFailAtAlloc(0) {
		t.Error("alloc-time mapfail filter wrong")
	}
	if !in.DegradeAtStep(2, 4) || in.DegradeAtStep(2, 3) || in.DegradeAtStep(1, 4) {
		t.Error("step mapfail filter wrong")
	}
}

func TestAllocFail(t *testing.T) {
	in := MustParse("allocfail:rank=2", 1)
	if in.AllocFail(0) || !in.AllocFail(2) {
		t.Error("allocfail filter wrong")
	}
}

func TestMetricsCounting(t *testing.T) {
	reg := metrics.NewRegistry()
	in := MustParse("delay:rank=*:mean=1ms,stall:rank=0:nth=2:dur=1s", 1)
	in.SetMetrics(reg)
	in.SendDelay(0)
	in.SendDelay(0) // delay + stall
	in.SendDelay(1)
	if got := reg.Counter(metrics.FaultInjectedTotal, metrics.Labels{"kind": "delay", "rank": "0"}).Value(); got != 2 {
		t.Errorf("delay rank 0 count = %d, want 2", got)
	}
	if got := reg.Counter(metrics.FaultInjectedTotal, metrics.Labels{"kind": "stall", "rank": "0"}).Value(); got != 1 {
		t.Errorf("stall rank 0 count = %d, want 1", got)
	}
	if got := reg.Counter(metrics.FaultInjectedTotal, metrics.Labels{"kind": "delay", "rank": "1"}).Value(); got != 1 {
		t.Errorf("delay rank 1 count = %d, want 1", got)
	}
}

func TestParseCorrupt(t *testing.T) {
	in := MustParse("corrupt:rank=1:nth=3:flips=2", 5)
	if len(in.corrupts) != 1 {
		t.Fatalf("clause count: %+v", in)
	}
	if in.String() != "corrupt:rank=1:nth=3:flips=2" {
		t.Errorf("round trip: %q", in.String())
	}
	for _, bad := range []string{
		"corrupt:rank=0:nth=0",         // nth is 1-based
		"corrupt:rank=0:nth=1:flips=0", // flips must be positive
		"corrupt:rank=0:nth=1:step=2",  // unknown field for kind
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestCorruptSendFiresOnceAtNthSend(t *testing.T) {
	in := MustParse("corrupt:rank=0:nth=2:flips=3", 9)
	var fired []int
	for i := 1; i <= 4; i++ {
		in.SendDelay(0) // advances the shared send counter
		if flips := in.CorruptSend(0, 16); flips != nil {
			fired = append(fired, i)
			if len(flips) != 3 {
				t.Errorf("send %d: %d flips, want 3", i, len(flips))
			}
			for _, fl := range flips {
				if fl.Off < 0 || fl.Off >= 8*16 || fl.Mask == 0 {
					t.Errorf("flip %+v out of range or no-op", fl)
				}
			}
		}
	}
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("corruption fired at sends %v, want [2]", fired)
	}
	in.SendDelay(1)
	if in.CorruptSend(1, 16) != nil {
		t.Error("other rank corrupted despite rank=0 filter")
	}
}

func TestCorruptSendDeterministic(t *testing.T) {
	flipsOf := func() []ByteFlip {
		in := MustParse("corrupt:rank=0:nth=1:flips=4", 11)
		in.SendDelay(0)
		return in.CorruptSend(0, 32)
	}
	a, b := flipsOf(), flipsOf()
	if len(a) != len(b) {
		t.Fatalf("flip counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flip %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestParseProcessFaults: the kill/exit grammar. rank=* is rejected (a
// clause that kills every worker leaves nothing to recover), exit needs an
// in-range status, and parsed clauses round-trip and report themselves via
// HasProcessFaults so drivers can refuse them off the supervised path.
func TestParseProcessFaults(t *testing.T) {
	spec := "kill:rank=3:nth=2,exit:rank=1:code=7"
	in := MustParse(spec, 1)
	if !in.HasProcessFaults() || len(in.procs) != 2 {
		t.Fatalf("clause counts wrong: %+v", in)
	}
	if in.String() != spec {
		t.Errorf("round trip: %q", in.String())
	}
	k, e := in.procs[0], in.procs[1]
	if k.rank != 3 || k.nth != 2 || k.exit {
		t.Errorf("kill clause = %+v", k)
	}
	if e.rank != 1 || e.nth != 1 || !e.exit || e.code != 7 {
		t.Errorf("exit clause = %+v (nth defaults to 1)", e)
	}
	if MustParse("delay:rank=0:mean=1ms", 1).HasProcessFaults() {
		t.Error("delay-only injector claims process faults")
	}
	for _, bad := range []string{
		"kill:rank=*",          // must name one rank
		"kill",                 // ditto (empty rank means *)
		"kill:rank=0:nth=0",    // nth is 1-based
		"kill:rank=0:code=3",   // code is exit-only
		"exit:rank=0",          // missing status
		"exit:rank=0:code=0",   // zero is success, not a death
		"exit:rank=0:code=256", // out of the 8-bit status range
		"exit:rank=*:code=3",   // must name one rank
		"kill:rank=0:step=2",   // unknown field for kind
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestSkipProcessFaults: the respawn-determinism contract. A respawned
// worker skips as many clause matches as it has dead predecessor lives; a
// broken skip would exit this very test process, so surviving the matching
// ordinal IS the assertion. Uses exit (not kill) so a regression fails the
// test run with a status instead of vanishing it.
func TestSkipProcessFaults(t *testing.T) {
	in := New(1).WithExit(0, 2, 7).WithExit(0, 4, 9)
	in.SkipProcessFaults(0, 1)
	for i := 1; i <= 3; i++ {
		in.SendDelay(0)
		in.ProcessFault(0) // send 2's clause must be swallowed by the skip
	}
	// The skip is per-rank: rank 1 has no skips and no matching clause.
	in.SendDelay(1)
	in.ProcessFault(1)
	// A second skip covers the nth=4 clause too; without it, the next
	// ProcessFault(0) would exit 9.
	in.SkipProcessFaults(0, 1)
	in.SendDelay(0)
	in.ProcessFault(0)
}

func TestStepPanicOneShot(t *testing.T) {
	in := MustParse("panic:rank=0:step=2", 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("no injected panic")
			}
		}()
		in.StepPanic(0, 2)
	}()
	// Replay passes the same step again: the clause must not re-fire, or a
	// recovered run would die in the same place forever.
	in.StepPanic(0, 2)
}
