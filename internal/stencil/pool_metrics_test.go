package stencil

import (
	"sync/atomic"
	"testing"

	"github.com/bricklab/brick/internal/metrics"
)

// TestPoolMetrics: an instrumented ForRange times every tile, covers every
// index, and busy time balances against the tile histogram's sum.
func TestPoolMetrics(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	reg := metrics.NewRegistry()
	p.SetMetrics(reg)

	const n = 1024
	covered := make([]int32, n)
	p.ForRange(4, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	snap := reg.Snapshot()
	hs := snap.FindHistograms(metrics.StencilTileSeconds, nil)
	if len(hs) != 1 || hs[0].Count == 0 {
		t.Fatalf("tile histogram: %+v", hs)
	}
	var tiles int64
	for _, c := range snap.Counters {
		if c.Name == metrics.PoolTilesTotal {
			tiles = c.Value
		}
	}
	if uint64(tiles) != hs[0].Count {
		t.Errorf("tiles counter %d != histogram count %d", tiles, hs[0].Count)
	}
	var busy, workers float64
	for _, g := range snap.Gauges {
		switch g.Name {
		case metrics.PoolBusySeconds:
			busy = g.Value
		case metrics.PoolWorkers:
			workers = g.Value
		}
	}
	if busy <= 0 || busy < hs[0].Sum*0.999 || busy > hs[0].Sum*1.001 {
		t.Errorf("busy seconds %v, want ≈ histogram sum %v", busy, hs[0].Sum)
	}
	if workers != 4 {
		t.Errorf("workers gauge = %v, want 4", workers)
	}

	// Detach: further work must not grow the series.
	p.SetMetrics(nil)
	before := hs[0].Count
	p.ForRange(4, n, func(lo, hi int) {})
	after := reg.Snapshot().FindHistograms(metrics.StencilTileSeconds, nil)[0].Count
	if after != before {
		t.Errorf("detached pool still recorded tiles: %d -> %d", before, after)
	}
}

// TestPoolMetricsSingleWorkerPath: the w<=1 inline fast path must also be
// timed when instrumented.
func TestPoolMetricsSingleWorkerPath(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	reg := metrics.NewRegistry()
	p.SetMetrics(reg)
	p.ForRange(1, 16, func(lo, hi int) {
		if lo != 0 || hi != 16 {
			t.Errorf("inline path got [%d,%d)", lo, hi)
		}
	})
	hs := reg.Snapshot().FindHistograms(metrics.StencilTileSeconds, nil)
	if len(hs) != 1 || hs[0].Count != 1 {
		t.Errorf("inline tile not recorded: %+v", hs)
	}
}

// TestForTilesCoverageAndCallbacks checks every tile runs exactly once and
// onDone fires per tile on both the inline (1 worker) and pooled paths.
func TestForTilesCoverageAndCallbacks(t *testing.T) {
	tiles := [][2]int{{0, 3}, {3, 7}, {10, 12}, {12, 20}}
	for _, w := range []int{1, 3} {
		var hits [20]int32
		var done [4]int32
		DefaultPool().ForTiles(w, tiles, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		}, func(tile int) { atomic.AddInt32(&done[tile], 1) })
		for _, tl := range tiles {
			for i := tl[0]; i < tl[1]; i++ {
				if hits[i] != 1 {
					t.Errorf("workers=%d: index %d executed %d times", w, i, hits[i])
				}
			}
		}
		for ti, n := range done {
			if n != 1 {
				t.Errorf("workers=%d: onDone(%d) fired %d times", w, ti, n)
			}
		}
	}
}

// TestForTilesPanicPropagation checks a panic on a pool worker (an aborted
// world's Pready, say) is re-raised on the calling goroutine rather than
// crashing the unguarded worker.
func TestForTilesPanicPropagation(t *testing.T) {
	tiles := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}}
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("caller recovered %v, want \"boom\"", r)
		}
	}()
	DefaultPool().ForTiles(3, tiles, func(lo, hi int) {}, func(tile int) {
		if tile == 2 {
			panic("boom")
		}
	})
	t.Error("ForTiles returned normally past a panicking callback")
}
