package stencil

import (
	"testing"

	"github.com/bricklab/brick/internal/metrics"
)

// TestPoolMetrics: an instrumented ForRange times every tile, covers every
// index, and busy time balances against the tile histogram's sum.
func TestPoolMetrics(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	reg := metrics.NewRegistry()
	p.SetMetrics(reg)

	const n = 1024
	covered := make([]int32, n)
	p.ForRange(4, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	snap := reg.Snapshot()
	hs := snap.FindHistograms(metrics.StencilTileSeconds, nil)
	if len(hs) != 1 || hs[0].Count == 0 {
		t.Fatalf("tile histogram: %+v", hs)
	}
	var tiles int64
	for _, c := range snap.Counters {
		if c.Name == metrics.PoolTilesTotal {
			tiles = c.Value
		}
	}
	if uint64(tiles) != hs[0].Count {
		t.Errorf("tiles counter %d != histogram count %d", tiles, hs[0].Count)
	}
	var busy, workers float64
	for _, g := range snap.Gauges {
		switch g.Name {
		case metrics.PoolBusySeconds:
			busy = g.Value
		case metrics.PoolWorkers:
			workers = g.Value
		}
	}
	if busy <= 0 || busy < hs[0].Sum*0.999 || busy > hs[0].Sum*1.001 {
		t.Errorf("busy seconds %v, want ≈ histogram sum %v", busy, hs[0].Sum)
	}
	if workers != 4 {
		t.Errorf("workers gauge = %v, want 4", workers)
	}

	// Detach: further work must not grow the series.
	p.SetMetrics(nil)
	before := hs[0].Count
	p.ForRange(4, n, func(lo, hi int) {})
	after := reg.Snapshot().FindHistograms(metrics.StencilTileSeconds, nil)[0].Count
	if after != before {
		t.Errorf("detached pool still recorded tiles: %d -> %d", before, after)
	}
}

// TestPoolMetricsSingleWorkerPath: the w<=1 inline fast path must also be
// timed when instrumented.
func TestPoolMetricsSingleWorkerPath(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	reg := metrics.NewRegistry()
	p.SetMetrics(reg)
	p.ForRange(1, 16, func(lo, hi int) {
		if lo != 0 || hi != 16 {
			t.Errorf("inline path got [%d,%d)", lo, hi)
		}
	})
	hs := reg.Snapshot().FindHistograms(metrics.StencilTileSeconds, nil)
	if len(hs) != 1 || hs[0].Count != 1 {
		t.Errorf("inline tile not recorded: %+v", hs)
	}
}
