package stencil

import (
	"testing"

	"github.com/bricklab/brick/internal/grid"
)

// TestShellPlusInteriorEqualsFull: computing the interior box and then the
// shell must write exactly the same elements as one full margin apply.
func TestShellPlusInteriorEqualsFull(t *testing.T) {
	for _, margin := range []int{0, 1, 2} {
		dom := [3]int{12, 10, 8}
		const ghost = 3
		st := Star7()
		src := grid.New(dom, ghost)
		fillRandomish(src)

		full := grid.New(dom, ghost)
		ApplyGrid(full, src, st, margin)

		split := grid.New(dom, ghost)
		// Interior box: the margin region shrunk by the radius on each side.
		var lo, hi [3]int
		for a := 0; a < 3; a++ {
			lo[a] = ghost - margin + st.Radius
			hi[a] = ghost + dom[a] + margin - st.Radius
		}
		ApplyGridRegion(split, src, st, lo, hi)
		ApplyGridShell(split, src, st, margin, lo, hi)

		for i := range full.Data {
			if full.Data[i] != split.Data[i] {
				t.Fatalf("margin %d: element %d differs: %v vs %v", margin, i, full.Data[i], split.Data[i])
			}
		}
	}
}

// TestShellSkipBoxLargerThanRegion: a degenerate inner box covering the
// whole region leaves the shell empty.
func TestShellSkipBoxLargerThanRegion(t *testing.T) {
	dom := [3]int{8, 8, 8}
	src := grid.New(dom, 2)
	dst := grid.New(dom, 2)
	fillRandomish(src)
	lo := [3]int{2, 2, 2}
	hi := [3]int{10, 10, 10}
	ApplyGridShell(dst, src, Star7(), 0, lo, hi) // inner == full region
	for _, v := range dst.Data {
		if v != 0 {
			t.Fatal("empty shell wrote data")
		}
	}
}

// TestShellWritesDisjointBoxes: no element is written twice (each box write
// count is exactly 0 or 1), checked by applying an accumulating marker.
func TestShellWritesDisjointBoxes(t *testing.T) {
	dom := [3]int{10, 10, 10}
	const ghost = 2
	src := grid.New(dom, ghost)
	dst := grid.New(dom, ghost)
	for i := range src.Data {
		src.Data[i] = 1
	}
	for i := range dst.Data {
		dst.Data[i] = -7
	}
	st := Star7() // coefficients sum to 1: output is exactly 1 where written
	lo := [3]int{ghost + 2, ghost + 2, ghost + 2}
	hi := [3]int{ghost + dom[0] - 2, ghost + dom[1] - 2, ghost + dom[2] - 2}
	ApplyGridShell(dst, src, st, 0, lo, hi)
	written, untouched := 0, 0
	for k := 0; k < dst.Ext[2]; k++ {
		for j := 0; j < dst.Ext[1]; j++ {
			for i := 0; i < dst.Ext[0]; i++ {
				switch dst.At(i, j, k) {
				case 1:
					written++
				case -7:
					untouched++
				default:
					t.Fatalf("element (%d,%d,%d) = %v: double write or partial", i, j, k, dst.At(i, j, k))
				}
			}
		}
	}
	wantWritten := dom[0]*dom[1]*dom[2] - 6*6*6
	if written != wantWritten {
		t.Errorf("written %d elements, want %d", written, wantWritten)
	}
	if written+untouched != len(dst.Data) {
		t.Error("element accounting wrong")
	}
}

func TestShellPanicsOnExcessMargin(t *testing.T) {
	src := grid.New([3]int{8, 8, 8}, 2)
	dst := grid.New([3]int{8, 8, 8}, 2)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	ApplyGridShell(dst, src, Star7(), 2, [3]int{4, 4, 4}, [3]int{8, 8, 8})
}
