package stencil

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bricklab/brick/internal/flight"
)

// TestForTilesFlightEventOrdering: with one worker the ring shows each
// tile's start before its done, and every done lands before the tile's
// onDone callback observes it — the ordering the partitioned blame analysis
// relies on (tile-start → tile-done → pready).
func TestForTilesFlightEventOrdering(t *testing.T) {
	fl := flight.New(1, 64).Rank(0)
	tiles := [][2]int{{0, 2}, {2, 5}, {5, 6}}
	doneAt := map[int]uint64{} // ring total when tile t's onDone fired
	NewPool(1).ForTilesFlight(1, tiles, func(lo, hi int) {}, func(tile int) {
		doneAt[tile] = fl.Total()
	}, fl)
	evs := fl.Events()
	if len(evs) != 2*len(tiles) {
		t.Fatalf("%d events, want %d (start+done per tile)", len(evs), 2*len(tiles))
	}
	for i := 0; i < len(tiles); i++ {
		start, done := evs[2*i], evs[2*i+1]
		if start.Kind != flight.KindTileStart || int(start.Part) != i {
			t.Fatalf("event %d = %+v, want tile-start tile=%d", 2*i, start, i)
		}
		if done.Kind != flight.KindTileDone || int(done.Part) != i {
			t.Fatalf("event %d = %+v, want tile-done tile=%d", 2*i+1, done, i)
		}
		if doneAt[i] < uint64(2*i+2) {
			t.Fatalf("tile %d onDone fired before its tile-done was recorded", i)
		}
	}
}

// TestForTilesFlightConcurrent: under many workers (and -race) every tile
// still records exactly one start and one done, and a nil ring stays a
// no-op.
func TestForTilesFlightConcurrent(t *testing.T) {
	fl := flight.New(1, 1024).Rank(0)
	tiles := make([][2]int, 32)
	for i := range tiles {
		tiles[i] = [2]int{i, i + 1}
	}
	var mu sync.Mutex
	covered := map[int]bool{}
	p := NewPool(4)
	defer p.Close()
	p.ForTilesFlight(4, tiles, func(lo, hi int) {
		mu.Lock()
		covered[lo] = true
		mu.Unlock()
	}, nil, fl)
	if len(covered) != len(tiles) {
		t.Fatalf("covered %d tiles, want %d", len(covered), len(tiles))
	}
	starts := map[int32]int{}
	dones := map[int32]int{}
	for _, e := range fl.Events() {
		switch e.Kind {
		case flight.KindTileStart:
			starts[e.Part]++
		case flight.KindTileDone:
			dones[e.Part]++
		}
	}
	for i := range tiles {
		if starts[int32(i)] != 1 || dones[int32(i)] != 1 {
			t.Fatalf("tile %d recorded %d starts / %d dones, want 1/1",
				i, starts[int32(i)], dones[int32(i)])
		}
	}
	// The nil-ring path (recorder off) must run identically.
	var ran atomic.Int32
	p.ForTilesFlight(2, tiles, func(lo, hi int) {}, func(tile int) { ran.Add(1) }, nil)
	if int(ran.Load()) != len(tiles) {
		t.Fatalf("nil-ring run fired %d onDone callbacks, want %d", ran.Load(), len(tiles))
	}
}
