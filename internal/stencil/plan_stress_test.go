package stencil_test

import (
	"testing"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
	"github.com/bricklab/brick/internal/stencil"
)

// runPlanWorld mirrors runOverlapWorld but drives one compiled persistent
// plan through the unified Start/Complete lifecycle for every step: Start
// from the rank body, Complete from a separate goroutine racing the
// interior worker tiles — the harness's overlap structure with plan reuse.
// workers == 1 is the serial exchange-then-compute reference.
func runPlanWorld(t *testing.T, st stencil.Stencil, steps, workers int) [][]float64 {
	t.Helper()
	const ranks = 8
	fields := make([][]float64, ranks)
	errs := make([]error, ranks)
	w := mpi.NewWorld(ranks)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		dec, err := core.NewBrickDecomp(core.Shape{4, 4, 4}, [3]int{16, 16, 16}, 4, 2, layout.Surface3D())
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		bs := dec.Allocate()
		ext := dec.ExtDim()
		for k := 0; k < ext[2]; k++ {
			for j := 0; j < ext[1]; j++ {
				for i := 0; i < ext[0]; i++ {
					x := uint64(((c.Rank()*ext[2]+k)*ext[1]+j)*ext[0]+i+1) * 0x9E3779B97F4A7C15
					dec.SetElem(bs, 0, i, j, k, float64(x%997)/991.0-0.5)
				}
			}
		}
		info := dec.BrickInfo()
		// One plan, compiled once, reused across every concurrent step.
		lx := core.NewLayoutExchange(core.NewExchanger(dec, cart), bs)
		defer lx.Close()
		inter := dec.Interior()
		var surf [][2]int
		for _, s := range dec.Order() {
			if sp := dec.Surface(s); sp.NBricks > 0 {
				surf = append(surf, [2]int{sp.Start, sp.End()})
			}
		}
		for s := 0; s < steps; s++ {
			src := core.NewBrick(info, bs, s%2)
			dst := core.NewBrick(info, bs, 1-s%2)
			c.Barrier()
			if workers > 1 {
				lx.Start()
				done := make(chan struct{})
				go func() {
					defer close(done)
					lx.Complete()
				}()
				stencil.ApplyBricksRangeWorkers(dst, src, dec, st, 0, inter.Start, inter.End(), workers)
				<-done
				stencil.ApplyBricksSpans(dst, src, dec, st, 0, surf, workers)
			} else {
				lx.Exchange()
				stencil.ApplyBricks(dst, src, dec, st, 0)
			}
		}
		if st := lx.Stats(); st.Starts != int64(steps) {
			t.Errorf("rank %d: plan starts %d, want %d", c.Rank(), st.Starts, steps)
		}
		fields[c.Rank()] = dec.ToArray(bs, steps%2)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return fields
}

// TestPersistentPlanStress reuses one compiled persistent plan across many
// concurrent timesteps on a full 8-rank world. Under -race this guards the
// persistent protocol's cross-goroutine handoff: Start posts from the rank
// body while Complete blocks on a second goroutine racing live worker
// tiles, step after step over the same pre-matched channels. The result
// must stay bit-identical to the serial order.
func TestPersistentPlanStress(t *testing.T) {
	st := stencil.Star7()
	serial := runPlanWorld(t, st, 4, 1)
	overlap := runPlanWorld(t, st, 4, 4)
	compareWorlds(t, st.Name, overlap, serial)
}
