package stencil

import (
	"math"
	"testing"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/layout"
)

// kernelSetup builds a decomposition with deterministically-filled field 0.
func kernelSetup(t testing.TB, dom [3]int, ghost int) (*core.BrickDecomp, *core.BrickStorage, core.Brick, core.Brick, core.Brick) {
	t.Helper()
	dec, err := core.NewBrickDecomp(core.Shape{4, 4, 4}, dom, ghost, 3, layout.Surface3D())
	if err != nil {
		t.Fatal(err)
	}
	bs := dec.Allocate()
	ext := dec.ExtDim()
	for k := 0; k < ext[2]; k++ {
		for j := 0; j < ext[1]; j++ {
			for i := 0; i < ext[0]; i++ {
				x := uint64((k*ext[1]+j)*ext[0]+i+1) * 0x9E3779B97F4A7C15
				dec.SetElem(bs, 0, i, j, k, float64(x%997)/991.0-0.5)
			}
		}
	}
	info := dec.BrickInfo()
	src := core.NewBrick(info, bs, 0)
	a := core.NewBrick(info, bs, 1)
	b := core.NewBrick(info, bs, 2)
	return dec, bs, src, a, b
}

// TestKernelMatchesReference cross-validates the table-driven kernel against
// the accessor-based oracle for several stencils and margins.
func TestKernelMatchesReference(t *testing.T) {
	for _, st := range []Stencil{Star7(), Cube125(), Star5()} {
		for _, margin := range []int{0, 1, 4 - st.Radius} {
			dec, bs, src, a, b := kernelSetup(t, [3]int{16, 12, 16}, 4)
			ApplyBricks(a, src, dec, st, margin)
			applyBricksReference(b, src, dec, st, margin)
			ext := dec.ExtDim()
			fa := dec.ToArray(bs, 1)
			fb := dec.ToArray(bs, 2)
			for p := range fa {
				if math.Abs(fa[p]-fb[p]) > 1e-13 {
					k := p / (ext[0] * ext[1])
					j := (p / ext[0]) % ext[1]
					i := p % ext[0]
					t.Fatalf("%s margin %d at (%d,%d,%d): kernel %v reference %v",
						st.Name, margin, i, j, k, fa[p], fb[p])
				}
			}
		}
	}
}

func TestKernelTables(t *testing.T) {
	kr := newBrickKernel(core.Shape{4, 4, 4}, Star7())
	// coordinate -1 (index 0 with r=1) steps to -1 neighbor, local 3.
	if kr.step[0][0] != -1 || kr.loc[0][0] != 3 {
		t.Errorf("low edge: step %d loc %d", kr.step[0][0], kr.loc[0][0])
	}
	// coordinate 4 (index 5) steps to +1 neighbor, local 0.
	if kr.step[0][5] != 1 || kr.loc[0][5] != 0 {
		t.Errorf("high edge: step %d loc %d", kr.step[0][5], kr.loc[0][5])
	}
	// interior coordinate 2 (index 3) stays.
	if kr.step[0][3] != 0 || kr.loc[0][3] != 2 {
		t.Errorf("interior: step %d loc %d", kr.step[0][3], kr.loc[0][3])
	}
}

func BenchmarkBrickKernelVsReference(b *testing.B) {
	dom := [3]int{32, 32, 32}
	for _, mode := range []string{"kernel", "reference"} {
		b.Run(mode, func(b *testing.B) {
			dec, _, src, dst, _ := kernelSetup(b, dom, 4)
			st := Star7()
			b.SetBytes(int64(8 * dom[0] * dom[1] * dom[2]))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "kernel" {
					ApplyBricks(dst, src, dec, st, 0)
				} else {
					applyBricksReference(dst, src, dec, st, 0)
				}
			}
		})
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		dec, bs, src, a, b := kernelSetup(t, [3]int{16, 16, 16}, 4)
		st := Star7()
		ApplyBricks(a, src, dec, st, 3)
		ApplyBricksParallel(b, src, dec, st, 3, workers)
		fa := dec.ToArray(bs, 1)
		fb := dec.ToArray(bs, 2)
		for p := range fa {
			if fa[p] != fb[p] {
				t.Fatalf("workers=%d: element %d differs: %v vs %v", workers, p, fa[p], fb[p])
			}
		}
	}
}

func TestParallelValidation(t *testing.T) {
	dec, _, src, a, _ := kernelSetup(t, [3]int{16, 16, 16}, 4)
	defer func() {
		if recover() == nil {
			t.Error("margin overflow accepted")
		}
	}()
	ApplyBricksParallel(a, src, dec, Star7(), 4, 2)
}
