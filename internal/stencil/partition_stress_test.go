package stencil_test

import (
	"testing"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
	"github.com/bricklab/brick/internal/stencil"
)

// runPartitionedWorld mirrors runPlanWorld but drives ONE partitioned plan
// through the pipelined schedule on a full 8-rank world: StartRecvs at the
// top of each step, Complete racing the interior tiles from a second
// goroutine, then StartSends arming the NEXT exchange before the surface
// pass releases its partitions tile by tile from live pool workers. The
// same compiled plan (same pre-matched partitioned channels) is reused
// across every overlapped step — the reuse pattern the harness runs.
func runPartitionedWorld(t *testing.T, st stencil.Stencil, steps, workers int) [][]float64 {
	t.Helper()
	const ranks = 8
	fields := make([][]float64, ranks)
	errs := make([]error, ranks)
	w := mpi.NewWorld(ranks)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		dec, err := core.NewBrickDecomp(core.Shape{4, 4, 4}, [3]int{16, 16, 16}, 4, 2, layout.Surface3D())
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		bs := dec.Allocate()
		ext := dec.ExtDim()
		for k := 0; k < ext[2]; k++ {
			for j := 0; j < ext[1]; j++ {
				for i := 0; i < ext[0]; i++ {
					x := uint64(((c.Rank()*ext[2]+k)*ext[1]+j)*ext[0]+i+1) * 0x9E3779B97F4A7C15
					dec.SetElem(bs, 0, i, j, k, float64(x%997)/991.0-0.5)
				}
			}
		}
		info := dec.BrickInfo()
		inter := dec.Interior()
		var surf [][2]int
		for _, s := range dec.Order() {
			if sp := dec.Surface(s); sp.NBricks > 0 {
				surf = append(surf, [2]int{sp.Start, sp.End()})
			}
		}
		tiles := stencil.TileSpans(surf, workers)
		// One partitioned plan, compiled once, reused across every step.
		lx := core.NewLayoutExchange(core.NewExchanger(dec, cart), bs, core.WithPartitions(tiles))
		defer lx.Close()
		if lx.Partitions() == 0 {
			errs[c.Rank()] = errTestNoPartitions
			return
		}
		// Prologue: arm the first exchange fully ready with initial values.
		lx.StartSends()
		lx.ReadyAll()
		for s := 0; s < steps; s++ {
			src := core.NewBrick(info, bs, s%2)
			dst := core.NewBrick(info, bs, 1-s%2)
			lx.StartRecvs()
			done := make(chan struct{})
			go func() {
				defer close(done)
				lx.Complete()
			}()
			stencil.ApplyBricksRangeWorkers(dst, src, dec, st, 0, inter.Start, inter.End(), workers)
			<-done
			if s < steps-1 {
				lx.StartSends()
				stencil.ApplyBricksTiles(dst, src, dec, st, 0, tiles, workers, lx.ReadyTile)
			} else {
				stencil.ApplyBricksTiles(dst, src, dec, st, 0, tiles, workers, nil)
			}
		}
		if st := lx.Stats(); st.Starts != int64(steps) {
			t.Errorf("rank %d: plan starts %d, want %d", c.Rank(), st.Starts, steps)
		}
		fields[c.Rank()] = dec.ToArray(bs, steps%2)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return fields
}

var errTestNoPartitions = &testErr{"partitioned plan compiled zero partitions"}

type testErr struct{ s string }

func (e *testErr) Error() string { return e.s }

// TestPartitionedPlanStress reuses one compiled partitioned plan across
// many overlapped timesteps on an 8-rank world. Under -race this guards
// the Pready path's cross-goroutine handoff: pool workers fire partitions
// of an armed send while peers' deliveries race the next step's interior
// tiles, step after step over the same pre-matched partitioned channels.
// The result must stay bit-identical to the serial plan order.
func TestPartitionedPlanStress(t *testing.T) {
	st := stencil.Star7()
	serial := runPlanWorld(t, st, 4, 1)
	pipelined := runPartitionedWorld(t, st, 4, 4)
	compareWorlds(t, st.Name+"-partitioned", pipelined, serial)
}
