// Package stencil defines the stencil operators of the paper's evaluation —
// the 7-point star (low arithmetic intensity) and the 5³ 125-point cube with
// 10 symmetry-unique coefficients (high arithmetic intensity) — and applies
// them to both lexicographic grids and brick storage. Application takes a
// margin parameter implementing ghost-cell expansion: margin m computes
// every element within m of the domain (redundant work inside the ghost
// zone), which lets a ghost zone of width G amortize one exchange across
// G/radius timesteps.
package stencil

import (
	"fmt"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/grid"
)

// Point is one stencil tap: an offset and its coefficient.
type Point struct {
	DI, DJ, DK int
	C          float64
}

// Stencil is a constant-coefficient stencil operator.
type Stencil struct {
	Name   string
	Radius int
	Points []Point
}

// Flops returns floating-point operations per output element (one multiply
// and one add per tap, minus the first add).
func (s Stencil) Flops() int { return 2*len(s.Points) - 1 }

// Star7 returns the canonical 7-point star stencil with distinct
// coefficients per direction (distinct values catch axis mix-ups in
// kernels); the coefficients sum to 1, so a constant field is a fixed point.
func Star7() Stencil {
	return Stencil{
		Name:   "7pt",
		Radius: 1,
		Points: []Point{
			{0, 0, 0, 0.25},
			{-1, 0, 0, 0.0833}, {1, 0, 0, 0.1},
			{0, -1, 0, 0.1167}, {0, 1, 0, 0.15},
			{0, 0, -1, 0.1333}, {0, 0, 1, 0.1667},
		},
	}
}

// Cube125 returns the 5³ cube stencil with 10 coefficients unique up to
// symmetry (the multiset of |di|,|dj|,|dk| picks the coefficient), matching
// the paper's high-arithmetic-intensity proxy. Coefficients are normalized
// to sum to 1.
func Cube125() Stencil {
	classes := map[[3]int]int{}
	idx := 0
	for a := 0; a <= 2; a++ {
		for b := a; b <= 2; b++ {
			for c := b; c <= 2; c++ {
				classes[[3]int{a, b, c}] = idx
				idx++
			}
		}
	}
	// Deterministic per-class weights, then normalize.
	weights := make([]float64, idx)
	for i := range weights {
		weights[i] = 1.0 / float64(1+i*i)
	}
	var pts []Point
	sum := 0.0
	for dk := -2; dk <= 2; dk++ {
		for dj := -2; dj <= 2; dj++ {
			for di := -2; di <= 2; di++ {
				key := sorted3(abs(di), abs(dj), abs(dk))
				w := weights[classes[key]]
				pts = append(pts, Point{di, dj, dk, w})
				sum += w
			}
		}
	}
	for i := range pts {
		pts[i].C /= sum
	}
	return Stencil{Name: "125pt", Radius: 2, Points: pts}
}

// Star5 returns a 2D 5-point star in the i-j plane (the paper's low-order
// example motivating ghost-cell expansion).
func Star5() Stencil {
	return Stencil{
		Name:   "5pt",
		Radius: 1,
		Points: []Point{
			{0, 0, 0, 0.4},
			{-1, 0, 0, 0.12}, {1, 0, 0, 0.14},
			{0, -1, 0, 0.16}, {0, 1, 0, 0.18},
		},
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sorted3(a, b, c int) [3]int {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int{a, b, c}
}

// ApplyGrid applies the stencil to every extended element within margin of
// the domain, reading src and writing dst (distinct grids of equal shape).
// margin+Radius must not exceed the ghost width. Work is divided over the
// default worker pool (ResolveWorkers(0) workers).
func ApplyGrid(dst, src *grid.Grid, st Stencil, margin int) {
	ApplyGridWorkers(dst, src, st, margin, 0)
}

// ApplyGridWorkers is ApplyGrid with an explicit worker count (<= 0 resolves
// via ResolveWorkers: BRICK_WORKERS, then GOMAXPROCS).
func ApplyGridWorkers(dst, src *grid.Grid, st Stencil, margin, workers int) {
	if dst.Ext != src.Ext || dst.Ghost != src.Ghost {
		panic("stencil: grid shape mismatch")
	}
	if margin+st.Radius > src.Ghost {
		panic(fmt.Sprintf("stencil: margin %d + radius %d exceeds ghost %d", margin, st.Radius, src.Ghost))
	}
	g := src.Ghost
	var lo, hi [3]int
	for a := 0; a < 3; a++ {
		lo[a], hi[a] = g-margin, g+src.Dom[a]+margin
	}
	applyGridBox(dst, src, st, lo, hi, workers)
}

// ApplyGridRegion applies the stencil over an explicit extended-coordinate
// box [lo, hi). The caller guarantees the stencil footprint stays inside the
// extended array. Used by the overlapped implementations to compute the
// ghost-independent interior while communication is in flight.
func ApplyGridRegion(dst, src *grid.Grid, st Stencil, lo, hi [3]int) {
	applyGridBox(dst, src, st, lo, hi, 0)
}

// ApplyGridRegionWorkers is ApplyGridRegion with an explicit worker count.
func ApplyGridRegionWorkers(dst, src *grid.Grid, st Stencil, lo, hi [3]int, workers int) {
	applyGridBox(dst, src, st, lo, hi, workers)
}

// applyGridBox runs the stencil over the extended box [lo, hi), tiling the
// (k, j) rows of the box into contiguous slabs across the worker pool. Rows
// are contiguous in memory along i, so each tile is a cache-friendly sweep;
// every output element belongs to exactly one tile, so workers never write
// the same element.
func applyGridBox(dst, src *grid.Grid, st Stencil, lo, hi [3]int, workers int) {
	if hi[0] <= lo[0] || hi[1] <= lo[1] || hi[2] <= lo[2] {
		return
	}
	offs := make([]int, len(st.Points))
	cs := make([]float64, len(st.Points))
	for p, pt := range st.Points {
		offs[p] = (pt.DK*src.Ext[1]+pt.DJ)*src.Ext[0] + pt.DI
		cs[p] = pt.C
	}
	nj := hi[1] - lo[1]
	rows := (hi[2] - lo[2]) * nj
	width := hi[0] - lo[0]
	DefaultPool().ForRange(workers, rows, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			k := lo[2] + r/nj
			j := lo[1] + r%nj
			base := src.Idx(lo[0], j, k)
			for i := base; i < base+width; i++ {
				acc := 0.0
				for p, off := range offs {
					acc += cs[p] * src.Data[i+off]
				}
				dst.Data[i] = acc
			}
		}
	})
}

// ApplyGridShell applies the stencil over the margin region minus the inner
// box [skipLo, skipHi) — the boundary completion pass of the overlapped
// implementations after communication finishes.
func ApplyGridShell(dst, src *grid.Grid, st Stencil, margin int, skipLo, skipHi [3]int) {
	ApplyGridShellWorkers(dst, src, st, margin, skipLo, skipHi, 0)
}

// ApplyGridShellWorkers is ApplyGridShell with an explicit worker count;
// each of the six shell slabs is tiled across the pool in turn.
func ApplyGridShellWorkers(dst, src *grid.Grid, st Stencil, margin int, skipLo, skipHi [3]int, workers int) {
	if margin+st.Radius > src.Ghost {
		panic("stencil: margin + radius exceeds ghost")
	}
	g := src.Ghost
	var lo, hi [3]int
	for a := 0; a < 3; a++ {
		lo[a], hi[a] = g-margin, g+src.Dom[a]+margin
	}
	// Decompose region \ inner into six slabs.
	boxes := [][2][3]int{
		{{lo[0], lo[1], lo[2]}, {hi[0], hi[1], skipLo[2]}},                 // low k
		{{lo[0], lo[1], skipHi[2]}, {hi[0], hi[1], hi[2]}},                 // high k
		{{lo[0], lo[1], skipLo[2]}, {hi[0], skipLo[1], skipHi[2]}},         // low j
		{{lo[0], skipHi[1], skipLo[2]}, {hi[0], hi[1], skipHi[2]}},         // high j
		{{lo[0], skipLo[1], skipLo[2]}, {skipLo[0], skipHi[1], skipHi[2]}}, // low i
		{{skipHi[0], skipLo[1], skipLo[2]}, {hi[0], skipHi[1], skipHi[2]}}, // high i
	}
	for _, b := range boxes {
		blo, bhi := b[0], b[1]
		empty := false
		for a := 0; a < 3; a++ {
			if bhi[a] <= blo[a] {
				empty = true
			}
		}
		if !empty {
			applyGridBox(dst, src, st, blo, bhi, workers)
		}
	}
}

// ApplyBricks applies the stencil to brick storage: every element within
// margin of the domain is recomputed from src into dst. src and dst are
// brick accessors over the same decomposition (typically two fields of one
// interleaved storage, so the exchange carries both). margin+Radius must not
// exceed the ghost width, and Radius must not exceed the brick extents.
// Bricks are divided over the default worker pool.
func ApplyBricks(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin int) {
	ApplyBricksParallel(dst, src, dec, st, margin, 0)
}

// ApplyBricksRange applies the stencil only to bricks with storage indices
// in [lo, hi). Because the decomposition stores the interior span and each
// surface region contiguously, this is the building block for overlapping
// communication with interior computation: compute Interior() while the
// exchange is in flight, then the surface spans after it completes.
// The range is divided over the default worker pool.
func ApplyBricksRange(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin, lo, hi int) {
	ApplyBricksRangeWorkers(dst, src, dec, st, margin, lo, hi, 0)
}

// checkBrickApply validates the shared preconditions of the brick kernels.
func checkBrickApply(dec *core.BrickDecomp, st Stencil, margin int) {
	if margin+st.Radius > dec.Ghost() {
		panic(fmt.Sprintf("stencil: margin %d + radius %d exceeds ghost %d", margin, st.Radius, dec.Ghost()))
	}
	sh := dec.Shape()
	for a := 0; a < 3; a++ {
		if st.Radius > sh[a] {
			panic("stencil: radius exceeds brick extent")
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// depth1 returns how far an extended coordinate sits outside the domain
// range [g, g+dom) on one axis.
func depth1(e, g, dom int) int {
	switch {
	case e < g:
		return g - e
	case e >= g+dom:
		return e - (g + dom) + 1
	default:
		return 0
	}
}

// applyBricksReference is the straightforward accessor-based implementation
// (one Brick.At per tap). It is the correctness oracle for the table-driven
// kernel and the subject of an ablation benchmark.
func applyBricksReference(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin int) {
	sh := dec.Shape()
	dom, g := dec.Dom(), dec.Ghost()
	for idx := 0; idx < dec.NumBricks(); idx++ {
		c := dec.BrickCoord(idx)
		if c[0] < 0 {
			continue
		}
		org := [3]int{c[0] * sh[0], c[1] * sh[1], c[2] * sh[2]}
		for k := 0; k < sh[2]; k++ {
			if depth1(org[2]+k, g, dom[2]) > margin {
				continue
			}
			for j := 0; j < sh[1]; j++ {
				if depth1(org[1]+j, g, dom[1]) > margin {
					continue
				}
				for i := 0; i < sh[0]; i++ {
					if depth1(org[0]+i, g, dom[0]) > margin {
						continue
					}
					acc := 0.0
					for _, pt := range st.Points {
						acc += pt.C * src.At(idx, i+pt.DI, j+pt.DJ, k+pt.DK)
					}
					dst.Set(idx, i, j, k, acc)
				}
			}
		}
	}
}
