package stencil

import (
	"github.com/bricklab/brick/internal/core"
)

// brickKernel is the table-driven stencil executor for bricks. For each axis
// it precomputes, for every in-brick coordinate plus stencil offset, which
// neighbor step (-1/0/+1) the access takes and the local coordinate inside
// that brick. The inner loop then reads through a per-brick table of 27
// neighbor base offsets — no branches, no method calls — which is how the
// paper's brick code generator realizes cross-brick accesses with vector
// align operations.
type brickKernel struct {
	sh     core.Shape
	r      int
	pts    []Point
	step   [3][]int8  // coordinate+r -> neighbor step along the axis
	loc    [3][]int32 // coordinate+r -> local coordinate in target brick
	rowOff []int32    // scratch: per-point (k,j)-dependent element offset
	rowAdj []int32    // scratch: per-point (k,j)-dependent adjacency group
	bases  [core.NumAdj]int64
}

func newBrickKernel(sh core.Shape, st Stencil) *brickKernel {
	k := &brickKernel{sh: sh, r: st.Radius, pts: st.Points,
		rowOff: make([]int32, len(st.Points)),
		rowAdj: make([]int32, len(st.Points)),
	}
	for a := 0; a < 3; a++ {
		n := sh[a] + 2*st.Radius
		k.step[a] = make([]int8, n)
		k.loc[a] = make([]int32, n)
		for x := 0; x < n; x++ {
			c := x - st.Radius
			switch {
			case c < 0:
				k.step[a][x] = -1
				k.loc[a][x] = int32(c + sh[a])
			case c >= sh[a]:
				k.step[a][x] = 1
				k.loc[a][x] = int32(c - sh[a])
			default:
				k.step[a][x] = 0
				k.loc[a][x] = int32(c)
			}
		}
	}
	return k
}

// loadBases fills the 27 neighbor base offsets (element index of the field's
// first element in each adjacent brick) for brick b. Missing neighbors get a
// poisoned base that traps via slice bounds if ever read.
func (kr *brickKernel) loadBases(src core.Brick, b int) {
	chunk := int64(src.Storage.Chunk())
	fb := int64(src.FieldBase())
	for a := 0; a < core.NumAdj; a++ {
		nb := int64(core.NoBrick)
		switch a {
		case core.AdjSelf:
			nb = int64(b)
		default:
			dk := a/9 - 1
			dj := (a/3)%3 - 1
			di := a%3 - 1
			nb = int64(src.Info.Adjacent(b, di, dj, dk))
		}
		if nb < 0 {
			kr.bases[a] = int64(len(src.Storage.Data)) // trap if dereferenced
		} else {
			kr.bases[a] = nb*chunk + fb
		}
	}
}

// basesValidFor reports whether every neighbor base reachable from the box
// [lo, hi) under the stencil radius exists. Bricks at the edge of the
// allocated grid have missing outward neighbors, but a box deep enough
// inside never reaches them.
func (kr *brickKernel) basesValidFor(src core.Brick, lo, hi [3]int) bool {
	limit := int64(len(src.Storage.Data))
	var steps [3][2]bool // per axis: -1 reachable, +1 reachable
	for a := 0; a < 3; a++ {
		steps[a][0] = lo[a]-kr.r < 0
		steps[a][1] = hi[a]-1+kr.r >= kr.sh[a]
	}
	reach := func(s, axis int) bool {
		switch s {
		case -1:
			return steps[axis][0]
		case 1:
			return steps[axis][1]
		default:
			return true
		}
	}
	for sk := -1; sk <= 1; sk++ {
		for sj := -1; sj <= 1; sj++ {
			for si := -1; si <= 1; si++ {
				if !reach(si, 0) || !reach(sj, 1) || !reach(sk, 2) {
					continue
				}
				if kr.bases[(sk+1)*9+(sj+1)*3+si+1] >= limit {
					return false
				}
			}
		}
	}
	return true
}

// runFast applies the stencil to every element of brick b using the
// segment-split row formulation: along the unit-stride axis each stencil
// point contributes at most two constant-base contiguous runs, so the inner
// loops are pure multiply-accumulate sweeps (the shape of the brick
// library's vector-align code generation). Requires all 27 neighbors to
// exist; callers fall back to run() otherwise.
func (kr *brickKernel) runFast(dst, src core.Brick, b int, row []float64, lo, hi [3]int) {
	sh := kr.sh
	r := kr.r
	sdat := src.Storage.Data
	ddat := dst.Storage.Data
	dbase := b*dst.Storage.Chunk() + dst.FieldBase()
	I, J := sh[0], sh[1]
	i0, i1 := lo[0], hi[0]
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			for i := i0; i < i1; i++ {
				row[i] = 0
			}
			for p := range kr.pts {
				pt := &kr.pts[p]
				sk := kr.step[2][k+pt.DK+r]
				lk := kr.loc[2][k+pt.DK+r]
				sj := kr.step[1][j+pt.DJ+r]
				lj := kr.loc[1][j+pt.DJ+r]
				adjRow := int32(sk+1)*9 + int32(sj+1)*3
				off := int64(lk*int32(J)+lj) * int64(I)
				c := pt.C
				emit := func(step int32, lo, hi int) {
					if lo >= hi {
						return
					}
					shift := pt.DI
					switch {
					case step < 0:
						shift += I
					case step > 0:
						shift -= I
					}
					base := kr.bases[adjRow+step+1] + off + int64(shift)
					s := sdat[base+int64(lo) : base+int64(hi)]
					rr := row[lo:hi]
					for x := range rr {
						rr[x] += c * s[x]
					}
				}
				seg := func(step int32, a, b int) {
					if a < i0 {
						a = i0
					}
					if b > i1 {
						b = i1
					}
					emit(step, a, b)
				}
				switch {
				case pt.DI < 0:
					seg(-1, 0, -pt.DI)
					seg(0, -pt.DI, I)
				case pt.DI > 0:
					seg(0, 0, I-pt.DI)
					seg(1, I-pt.DI, I)
				default:
					seg(0, 0, I)
				}
			}
			copy(ddat[dbase+(k*J+j)*I+i0:dbase+(k*J+j)*I+i1], row[i0:i1])
		}
	}
}

// run applies the stencil to every element of brick b for which
// keep(i,j,k) is true (nil keep = all elements).
func (kr *brickKernel) run(dst, src core.Brick, b int, keep func(i, j, k int) bool) {
	kr.loadBases(src, b)
	sh := kr.sh
	r := kr.r
	sdat := src.Storage.Data
	ddat := dst.Storage.Data
	dbase := b*dst.Storage.Chunk() + dst.FieldBase()
	I, J := sh[0], sh[1]
	for k := 0; k < sh[2]; k++ {
		for j := 0; j < sh[1]; j++ {
			// Hoist the (k,j)-dependent parts per stencil point.
			for p, pt := range kr.pts {
				sk := kr.step[2][k+pt.DK+r]
				lk := kr.loc[2][k+pt.DK+r]
				sj := kr.step[1][j+pt.DJ+r]
				lj := kr.loc[1][j+pt.DJ+r]
				kr.rowAdj[p] = int32(sk+1)*9 + int32(sj+1)*3
				kr.rowOff[p] = (lk*int32(J) + lj) * int32(I)
			}
			drow := dbase + (k*J+j)*I
			for i := 0; i < sh[0]; i++ {
				if keep != nil && !keep(i, j, k) {
					continue
				}
				acc := 0.0
				for p := range kr.pts {
					pt := &kr.pts[p]
					x := i + pt.DI + r
					base := kr.bases[kr.rowAdj[p]+int32(kr.step[0][x])+1]
					acc += pt.C * sdat[base+int64(kr.rowOff[p])+int64(kr.loc[0][x])]
				}
				ddat[drow+i] = acc
			}
		}
	}
}
