package stencil_test

import (
	"testing"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/layout"
	"github.com/bricklab/brick/internal/mpi"
	"github.com/bricklab/brick/internal/stencil"
)

// runOverlapWorld runs steps Jacobi-style timesteps over a periodic 2×2×2
// rank grid. When workers > 1 each rank runs its ghost exchange on a separate
// goroutine while worker tiles compute the interior bricks — the structure
// the harness uses for overlapped implementations, and the case the race
// detector must find clean: the in-flight exchange only reads surface-brick
// chunks and writes ghost-brick chunks, disjoint from the interior writes.
// workers == 1 keeps the serial exchange-then-compute order as the reference.
func runOverlapWorld(t *testing.T, st stencil.Stencil, steps, workers int) [][]float64 {
	t.Helper()
	const ranks = 8
	fields := make([][]float64, ranks)
	errs := make([]error, ranks)
	w := mpi.NewWorld(ranks)
	w.Run(func(c *mpi.Comm) {
		cart := mpi.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		dec, err := core.NewBrickDecomp(core.Shape{4, 4, 4}, [3]int{16, 16, 16}, 4, 2, layout.Surface3D())
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		bs := dec.Allocate()
		ext := dec.ExtDim()
		for k := 0; k < ext[2]; k++ {
			for j := 0; j < ext[1]; j++ {
				for i := 0; i < ext[0]; i++ {
					x := uint64(((c.Rank()*ext[2]+k)*ext[1]+j)*ext[0]+i+1) * 0x9E3779B97F4A7C15
					dec.SetElem(bs, 0, i, j, k, float64(x%997)/991.0-0.5)
				}
			}
		}
		info := dec.BrickInfo()
		ex := core.NewExchanger(dec, cart)
		inter := dec.Interior()
		var surf [][2]int
		for _, s := range dec.Order() {
			if sp := dec.Surface(s); sp.NBricks > 0 {
				surf = append(surf, [2]int{sp.Start, sp.End()})
			}
		}
		for s := 0; s < steps; s++ {
			src := core.NewBrick(info, bs, s%2)
			dst := core.NewBrick(info, bs, 1-s%2)
			c.Barrier()
			if workers > 1 {
				done := make(chan struct{})
				go func() {
					defer close(done)
					ex.Exchange(bs)
				}()
				stencil.ApplyBricksRangeWorkers(dst, src, dec, st, 0, inter.Start, inter.End(), workers)
				<-done
				stencil.ApplyBricksSpans(dst, src, dec, st, 0, surf, workers)
			} else {
				ex.Exchange(bs)
				stencil.ApplyBricks(dst, src, dec, st, 0)
			}
		}
		fields[c.Rank()] = dec.ToArray(bs, steps%2)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return fields
}

// compareWorlds requires bit-identical fields: every element is written by
// exactly one worker tile and the per-element accumulation order is the same
// serial and tiled, so overlap must not perturb a single bit.
func compareWorlds(t *testing.T, name string, got, want [][]float64) {
	t.Helper()
	for r := range want {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("%s rank %d: %d elements, want %d", name, r, len(got[r]), len(want[r]))
		}
		for p := range want[r] {
			if got[r][p] != want[r][p] {
				t.Fatalf("%s rank %d element %d: overlapped %v, serial %v",
					name, r, p, got[r][p], want[r][p])
			}
		}
	}
}

// TestOverlapExchangeStress drives concurrent exchange + interior compute
// across a full 8-rank world for several timesteps. Under -race this is the
// main guard for the comm/compute overlap machinery: Isend/Irecv/Wait are
// issued from a goroutine other than the rank body while the worker pool is
// live on the same brick storage.
func TestOverlapExchangeStress(t *testing.T) {
	st := stencil.Star7()
	serial := runOverlapWorld(t, st, 3, 1)
	overlap := runOverlapWorld(t, st, 3, 4)
	compareWorlds(t, st.Name, overlap, serial)
}

// TestOverlapExchangeStressCube125 repeats the stress with the 125-point
// stencil, whose wider reads cover the full surface/ghost read pattern.
func TestOverlapExchangeStressCube125(t *testing.T) {
	if testing.Short() {
		t.Skip("125-point stress skipped in -short mode")
	}
	st := stencil.Cube125()
	serial := runOverlapWorld(t, st, 2, 1)
	overlap := runOverlapWorld(t, st, 2, 3)
	compareWorlds(t, st.Name, overlap, serial)
}
