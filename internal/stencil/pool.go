package stencil

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bricklab/brick/internal/flight"
	"github.com/bricklab/brick/internal/metrics"
)

// This file implements the per-rank compute worker pool: a persistent team
// of goroutines that executes the stencil kernels over contiguous tiles of
// the iteration space (k-slabs of rows for grids, runs of bricks for brick
// storage). It plays the role of a rank's OpenMP team in the paper's
// experiments — without it, only the YASK-OL baseline could hide
// communication behind computation, because nothing else kept the cores
// busy during an exchange.
//
// Worker-count resolution, in priority order: an explicit positive count,
// the BRICK_WORKERS environment variable, then GOMAXPROCS. A resolved count
// of 1 bypasses the pool entirely (zero overhead on single-core hosts).

// WorkersEnv is the environment variable consulted when no explicit worker
// count is given.
const WorkersEnv = "BRICK_WORKERS"

// ResolveWorkers resolves a requested worker count: positive values are
// taken as-is, otherwise BRICK_WORKERS, otherwise GOMAXPROCS.
func ResolveWorkers(requested int) int {
	if requested > 0 {
		return requested
	}
	if s := os.Getenv(WorkersEnv); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// tilesPerWorker controls tile granularity: each ForRange call splits its
// iteration space into about this many tiles per worker, so faster workers
// steal slack from slower ones while tiles stay contiguous (cache-friendly
// k-slab tiling).
const tilesPerWorker = 4

// Pool is a persistent team of worker goroutines executing range tiles.
// All methods are safe for concurrent use: many ranks (goroutines) may
// share one pool, each running its own ForRange concurrently.
type Pool struct {
	workers int
	tasks   chan func()
	pm      atomic.Pointer[poolMetrics] // nil unless SetMetrics attached one
}

// poolMetrics caches the pool's instrument series so the per-tile path
// never touches the registry lock.
type poolMetrics struct {
	tileSeconds *metrics.Histogram
	queueDepth  *metrics.Gauge
	tilesTotal  *metrics.Counter
	busySeconds *metrics.Gauge
}

// SetMetrics attaches a registry: every tile execution is timed into the
// stencil_tile_seconds histogram, the queue depth is sampled at each
// submit, and accumulated busy time (for utilization: busy / (workers ×
// wall)) is exported. A nil registry detaches. Safe to call concurrently
// with running ForRange calls; tiles already in flight finish under the
// previous setting.
func (p *Pool) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		p.pm.Store(nil)
		return
	}
	reg.Describe(metrics.StencilTileSeconds, "Per-tile stencil kernel execution time (seconds).")
	reg.Describe(metrics.PoolQueueDepth, "Worker-pool tasks queued at submit time.")
	reg.Describe(metrics.PoolTilesTotal, "Tiles executed by the worker pool.")
	reg.Describe(metrics.PoolBusySeconds, "Accumulated worker busy time (seconds).")
	reg.Describe(metrics.PoolWorkers, "Worker count of the pool.")
	reg.Gauge(metrics.PoolWorkers, nil).Set(float64(p.workers))
	p.pm.Store(&poolMetrics{
		tileSeconds: reg.Histogram(metrics.StencilTileSeconds, nil),
		queueDepth:  reg.Gauge(metrics.PoolQueueDepth, nil),
		tilesTotal:  reg.Counter(metrics.PoolTilesTotal, nil),
		busySeconds: reg.Gauge(metrics.PoolBusySeconds, nil),
	})
}

// NewPool starts a pool with the given worker count (<= 0 resolves via
// ResolveWorkers). Call Close to release the worker goroutines.
func NewPool(workers int) *Pool {
	w := ResolveWorkers(workers)
	p := &Pool{workers: w, tasks: make(chan func(), 4*w)}
	for i := 0; i < w; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the worker goroutines once queued tasks drain. ForRange must
// not be called after Close.
func (p *Pool) Close() { close(p.tasks) }

// submit hands a task to an idle pool worker, or spawns a goroutine when
// the queue is full (callers never block on a busy pool, so a ForRange
// issued from inside a pool task cannot deadlock).
func (p *Pool) submit(f func()) {
	if pm := p.pm.Load(); pm != nil {
		pm.queueDepth.Set(float64(len(p.tasks)))
	}
	select {
	case p.tasks <- f:
	default:
		go f()
	}
}

// ForRange executes fn over [0, n) split into contiguous tiles, with up to
// `workers` concurrent executors including the caller (workers <= 0
// resolves via ResolveWorkers). Tiles are handed out dynamically through an
// atomic cursor, so uneven tiles balance across workers. fn must be safe to
// call concurrently on disjoint ranges; every index is covered exactly
// once. With one worker (or n <= 1) fn runs inline: fn(0, n).
func (p *Pool) ForRange(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := ResolveWorkers(workers)
	if w > n {
		w = n
	}
	run := fn
	if pm := p.pm.Load(); pm != nil {
		run = func(lo, hi int) {
			t0 := time.Now()
			fn(lo, hi)
			d := time.Since(t0).Seconds()
			pm.tileSeconds.Observe(d)
			pm.busySeconds.Add(d)
			pm.tilesTotal.Inc()
		}
	}
	if w <= 1 {
		run(0, n)
		return
	}
	grain := n / (w * tilesPerWorker)
	if grain < 1 {
		grain = 1
	}
	var cursor atomic.Int64
	loop := func() {
		for {
			lo := int(cursor.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			run(lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 0; i < w-1; i++ {
		p.submit(func() {
			defer wg.Done()
			loop()
		})
	}
	loop()
	wg.Wait()
}

// ForTiles executes a precomputed tile list — each tile a half-open [lo,
// hi) index range — with up to `workers` concurrent executors including the
// caller, invoking onDone(t) on the executing worker as soon as tile t's fn
// returns. Unlike ForRange, the tile boundaries are fixed by the caller, so
// a plan compiled against them (partitioned exchange sends) knows exactly
// which spans each completion callback covers. Tiles are handed out
// dynamically through an atomic cursor; onDone may be nil and must be safe
// to call concurrently for distinct tiles.
//
// A panic inside fn or onDone (a Pready firing into an aborted world, for
// one) is re-raised on the calling goroutine after every executor drains,
// so abort propagation unwinds the rank body instead of crashing an
// unguarded pool worker. The first panic wins; tiles already claimed by
// other executors still run.
func (p *Pool) ForTiles(workers int, tiles [][2]int, fn func(lo, hi int), onDone func(tile int)) {
	p.ForTilesFlight(workers, tiles, fn, onDone, nil)
}

// ForTilesFlight is ForTiles with a flight ring: every tile records a
// tile-start event before fn and a tile-done event after fn returns but
// before onDone fires — so in a partitioned exchange the ring shows
// tile-start → tile-done → pready in causal order, and a tile whose
// tile-done never appears is the one that hung or panicked. A nil ring
// records nothing.
func (p *Pool) ForTilesFlight(workers int, tiles [][2]int, fn func(lo, hi int), onDone func(tile int), fl *flight.Ring) {
	if len(tiles) == 0 {
		return
	}
	w := ResolveWorkers(workers)
	if w > len(tiles) {
		w = len(tiles)
	}
	run := fn
	if pm := p.pm.Load(); pm != nil {
		run = func(lo, hi int) {
			t0 := time.Now()
			fn(lo, hi)
			d := time.Since(t0).Seconds()
			pm.tileSeconds.Observe(d)
			pm.busySeconds.Add(d)
			pm.tilesTotal.Inc()
		}
	}
	exec := func(t int) {
		fl.Record(flight.KindTileStart, -1, -1, int32(t), 0, 0)
		run(tiles[t][0], tiles[t][1])
		fl.Record(flight.KindTileDone, -1, -1, int32(t), 0, 0)
		if onDone != nil {
			onDone(t)
		}
	}
	if w <= 1 {
		for t := range tiles {
			exec(t)
		}
		return
	}
	var cursor atomic.Int64
	var pan atomic.Pointer[any] // first panic from any executor
	loop := func() {
		defer func() {
			if r := recover(); r != nil {
				v := r
				pan.CompareAndSwap(nil, &v)
			}
		}()
		for {
			t := int(cursor.Add(1)) - 1
			if t >= len(tiles) {
				return
			}
			exec(t)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 0; i < w-1; i++ {
		p.submit(func() {
			defer wg.Done()
			loop()
		})
	}
	loop()
	wg.Wait()
	if pp := pan.Load(); pp != nil {
		panic(*pp)
	}
}

// TileSpans chops the given [lo, hi) index spans into the pool's tile
// granularity for the given worker count (the same grain rule ForRange
// applies to a flattened space, but with tiles never crossing a span
// boundary, so each tile is one contiguous index range). This is the
// tiling contract between the partitioned exchange plan compiler and the
// surface pass: compile partitions against TileSpans(spans, w) and execute
// with ForTiles over the same list, and each onDone(t) covers exactly
// tiles[t].
func TileSpans(spans [][2]int, workers int) [][2]int {
	w := ResolveWorkers(workers)
	total := 0
	for _, sp := range spans {
		total += sp[1] - sp[0]
	}
	if total <= 0 {
		return nil
	}
	grain := total / (w * tilesPerWorker)
	if grain < 1 {
		grain = 1
	}
	var tiles [][2]int
	for _, sp := range spans {
		for lo := sp[0]; lo < sp[1]; lo += grain {
			hi := lo + grain
			if hi > sp[1] {
				hi = sp[1]
			}
			tiles = append(tiles, [2]int{lo, hi})
		}
	}
	return tiles
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// DefaultPool returns the shared process-wide pool, created on first use
// with ResolveWorkers(0) workers. The kernels in this package dispatch
// through it; it is never closed.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}
