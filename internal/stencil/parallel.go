package stencil

import (
	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/flight"
)

// ApplyBricksParallel is ApplyBricks with an explicit worker count: the
// brick list is divided into contiguous runs executed by the worker pool
// (the role of a rank's OpenMP team in the paper's experiments — bricks are
// independent units of parallel work, so no synchronization is needed
// within one application). workers <= 0 resolves via ResolveWorkers
// (BRICK_WORKERS, then GOMAXPROCS); 1 runs serially.
func ApplyBricksParallel(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin, workers int) {
	checkBrickApply(dec, st, margin)
	DefaultPool().ForRange(workers, dec.NumBricks(), func(lo, hi int) {
		applyBrickRange(dst, src, dec, st, margin, lo, hi)
	})
}

// ApplyBricksRangeWorkers is ApplyBricksRange with an explicit worker
// count; the [lo, hi) storage-index range is tiled across the pool.
func ApplyBricksRangeWorkers(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin, lo, hi, workers int) {
	checkBrickApply(dec, st, margin)
	if lo < 0 || hi > dec.NumBricks() || lo > hi {
		panic("stencil: brick range out of bounds")
	}
	DefaultPool().ForRange(workers, hi-lo, func(a, b int) {
		applyBrickRange(dst, src, dec, st, margin, lo+a, lo+b)
	})
}

// ApplyBricksSpans applies the stencil to each [start, end) span of brick
// storage indices, flattening all spans into one tiled iteration space so
// small spans (individual surface regions) still load-balance across the
// pool. Used by the overlapped step to compute every surface region after
// the exchange completes.
func ApplyBricksSpans(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin int, spans [][2]int, workers int) {
	checkBrickApply(dec, st, margin)
	total := 0
	starts := make([]int, len(spans)) // flattened start of each span
	for i, sp := range spans {
		if sp[0] < 0 || sp[1] > dec.NumBricks() || sp[0] > sp[1] {
			panic("stencil: brick span out of bounds")
		}
		starts[i] = total
		total += sp[1] - sp[0]
	}
	DefaultPool().ForRange(workers, total, func(flo, fhi int) {
		for i, sp := range spans {
			lo := max(flo, starts[i])
			hi := min(fhi, starts[i]+sp[1]-sp[0])
			if lo < hi {
				off := sp[0] - starts[i]
				applyBrickRange(dst, src, dec, st, margin, lo+off, hi+off)
			}
		}
	})
}

// ApplyBricksTiles applies the stencil over a precomputed tile list (each
// tile a [lo, hi) storage-index range, as produced by TileSpans), invoking
// onTile(t) from the executing worker the moment tile t's bricks are done.
// The partitioned exchange uses this to fire Pready for exactly the spans a
// finished tile produced while sibling tiles are still computing. onTile
// may be nil, in which case this degenerates to a fixed-tiling surface
// pass. Bit-identity: bricks are independent, so any tiling of the same
// index set produces Float64bits-identical results.
func ApplyBricksTiles(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin int, tiles [][2]int, workers int, onTile func(tile int)) {
	ApplyBricksTilesFlight(dst, src, dec, st, margin, tiles, workers, onTile, nil)
}

// ApplyBricksTilesFlight is ApplyBricksTiles with a flight ring attached:
// each tile's start and completion is recorded on fl from the executing
// worker, so a post-mortem ring shows which tile a rank was inside — and
// which tile never finished — when the world died. A nil ring records
// nothing.
func ApplyBricksTilesFlight(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin int, tiles [][2]int, workers int, onTile func(tile int), fl *flight.Ring) {
	checkBrickApply(dec, st, margin)
	for _, tl := range tiles {
		if tl[0] < 0 || tl[1] > dec.NumBricks() || tl[0] > tl[1] {
			panic("stencil: brick tile out of bounds")
		}
	}
	DefaultPool().ForTilesFlight(workers, tiles, func(lo, hi int) {
		applyBrickRange(dst, src, dec, st, margin, lo, hi)
	}, onTile, fl)
}

// applyBrickRange applies the stencil to bricks with storage indices in
// [loIdx, hiIdx), using the same box/fast-path dispatch as ApplyBricks.
func applyBrickRange(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin, loIdx, hiIdx int) {
	sh := dec.Shape()
	dom, g := dec.Dom(), dec.Ghost()
	kr := newBrickKernel(sh, st)
	row := make([]float64, sh[0])
	for idx := loIdx; idx < hiIdx; idx++ {
		c := dec.BrickCoord(idx)
		if c[0] < 0 {
			continue
		}
		var lo, hi [3]int
		empty := false
		for a := 0; a < 3; a++ {
			org := c[a] * sh[a]
			lo[a] = max(0, g-margin-org)
			hi[a] = min(sh[a], g+dom[a]+margin-org)
			if lo[a] >= hi[a] {
				empty = true
			}
		}
		if empty {
			continue
		}
		kr.loadBases(src, idx)
		if kr.basesValidFor(src, lo, hi) {
			kr.runFast(dst, src, idx, row, lo, hi)
		} else {
			kr.run(dst, src, idx, func(i, j, k int) bool {
				return i >= lo[0] && i < hi[0] && j >= lo[1] && j < hi[1] && k >= lo[2] && k < hi[2]
			})
		}
	}
}
