package stencil

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/bricklab/brick/internal/core"
)

// ApplyBricksParallel is ApplyBricks with the brick list divided across
// worker goroutines (the role of a rank's OpenMP team in the paper's
// experiments: bricks are independent units of parallel work, so no
// synchronization is needed within one application). workers <= 0 selects
// GOMAXPROCS.
func ApplyBricksParallel(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin, workers int) {
	if margin+st.Radius > dec.Ghost() {
		panic(fmt.Sprintf("stencil: margin %d + radius %d exceeds ghost %d", margin, st.Radius, dec.Ghost()))
	}
	sh := dec.Shape()
	for a := 0; a < 3; a++ {
		if st.Radius > sh[a] {
			panic("stencil: radius exceeds brick extent")
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := dec.NumBricks()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ApplyBricks(dst, src, dec, st, margin)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			applyBrickRange(dst, src, dec, st, margin, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// applyBrickRange applies the stencil to bricks with storage indices in
// [loIdx, hiIdx), using the same box/fast-path dispatch as ApplyBricks.
func applyBrickRange(dst, src core.Brick, dec *core.BrickDecomp, st Stencil, margin, loIdx, hiIdx int) {
	sh := dec.Shape()
	dom, g := dec.Dom(), dec.Ghost()
	kr := newBrickKernel(sh, st)
	row := make([]float64, sh[0])
	for idx := loIdx; idx < hiIdx; idx++ {
		c := dec.BrickCoord(idx)
		if c[0] < 0 {
			continue
		}
		var lo, hi [3]int
		empty := false
		for a := 0; a < 3; a++ {
			org := c[a] * sh[a]
			lo[a] = max(0, g-margin-org)
			hi[a] = min(sh[a], g+dom[a]+margin-org)
			if lo[a] >= hi[a] {
				empty = true
			}
		}
		if empty {
			continue
		}
		kr.loadBases(src, idx)
		if kr.basesValidFor(src, lo, hi) {
			kr.runFast(dst, src, idx, row, lo, hi)
		} else {
			kr.run(dst, src, idx, func(i, j, k int) bool {
				return i >= lo[0] && i < hi[0] && j >= lo[1] && j < hi[1] && k >= lo[2] && k < hi[2]
			})
		}
	}
}
