package stencil

import (
	"math"
	"testing"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/grid"
	"github.com/bricklab/brick/internal/layout"
)

func TestStencilDefinitions(t *testing.T) {
	s7 := Star7()
	if len(s7.Points) != 7 || s7.Radius != 1 {
		t.Errorf("Star7: %d points radius %d", len(s7.Points), s7.Radius)
	}
	if s7.Flops() != 13 {
		t.Errorf("Star7 flops = %d", s7.Flops())
	}
	c125 := Cube125()
	if len(c125.Points) != 125 || c125.Radius != 2 {
		t.Errorf("Cube125: %d points radius %d", len(c125.Points), c125.Radius)
	}
	s5 := Star5()
	if len(s5.Points) != 5 {
		t.Errorf("Star5: %d points", len(s5.Points))
	}
	// Coefficients sum to 1: constant fields are fixed points.
	for _, st := range []Stencil{s7, c125, s5} {
		sum := 0.0
		for _, p := range st.Points {
			sum += p.C
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%s coefficients sum to %v", st.Name, sum)
		}
	}
	// Cube125 symmetry: coefficient depends only on |offset| multiset.
	coef := map[[3]int]float64{}
	for _, p := range c125.Points {
		key := sorted3(abs(p.DI), abs(p.DJ), abs(p.DK))
		if prev, ok := coef[key]; ok && prev != p.C {
			t.Errorf("Cube125 asymmetric at class %v", key)
		}
		coef[key] = p.C
	}
	if len(coef) != 10 {
		t.Errorf("Cube125 has %d coefficient classes, want 10", len(coef))
	}
}

func TestApplyGridConstantFixedPoint(t *testing.T) {
	src := grid.New([3]int{8, 8, 8}, 2)
	dst := grid.New([3]int{8, 8, 8}, 2)
	for i := range src.Data {
		src.Data[i] = 3.5
	}
	ApplyGrid(dst, src, Star7(), 1)
	for k := 1; k < 19; k++ { // computed region: depth ≤ 1
		v := dst.At(k%10+1, 5, 5)
		if math.Abs(v-3.5) > 1e-12 {
			t.Fatalf("constant field moved: %v", v)
		}
	}
}

func TestApplyGridKnownValue(t *testing.T) {
	// Linear field f = i is a fixed point of any stencil whose coefficients
	// sum to 1 and whose i-moment is zero; Star7 has asymmetric coefficients
	// so compute the expected drift explicitly.
	src := grid.New([3]int{8, 8, 8}, 2)
	dst := grid.New([3]int{8, 8, 8}, 2)
	st := Star7()
	for k := 0; k < 12; k++ {
		for j := 0; j < 12; j++ {
			for i := 0; i < 12; i++ {
				src.Set(i, j, k, float64(i))
			}
		}
	}
	drift := 0.0
	for _, p := range st.Points {
		drift += p.C * float64(p.DI)
	}
	ApplyGrid(dst, src, st, 0)
	if got, want := dst.At(5, 5, 5), 5+drift; math.Abs(got-want) > 1e-12 {
		t.Errorf("linear field: got %v want %v", got, want)
	}
}

func TestApplyGridMarginPanics(t *testing.T) {
	src := grid.New([3]int{8, 8, 8}, 2)
	dst := grid.New([3]int{8, 8, 8}, 2)
	defer func() {
		if recover() == nil {
			t.Error("margin+radius > ghost accepted")
		}
	}()
	ApplyGrid(dst, src, Star7(), 2)
}

func TestApplyGridShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch accepted")
		}
	}()
	ApplyGrid(grid.New([3]int{8, 8, 8}, 2), grid.New([3]int{8, 8, 4}, 2), Star7(), 0)
}

// fillRandomish deterministically fills an extended array.
func fillRandomish(g *grid.Grid) {
	for i := range g.Data {
		x := uint64(i+1) * 0x9E3779B97F4A7C15
		g.Data[i] = float64(x%1000)/997.0 - 0.5
	}
}

// brickVsGrid applies the stencil both ways on identical data and compares
// every computed element.
func brickVsGrid(t *testing.T, st Stencil, dom [3]int, ghost, margin int) {
	t.Helper()
	src := grid.New(dom, ghost)
	dst := grid.New(dom, ghost)
	fillRandomish(src)
	ApplyGrid(dst, src, st, margin)

	dec, err := core.NewBrickDecomp(core.Shape{4, 4, 4}, dom, ghost, 2, layout.Surface3D())
	if err != nil {
		t.Fatal(err)
	}
	bs := dec.Allocate()
	dec.FromArray(bs, 0, src.Data)
	info := dec.BrickInfo()
	bsrc := core.NewBrick(info, bs, 0)
	bdst := core.NewBrick(info, bs, 1)
	ApplyBricks(bdst, bsrc, dec, st, margin)
	out := dec.ToArray(bs, 1)

	g := ghost
	for k := 0; k < src.Ext[2]; k++ {
		for j := 0; j < src.Ext[1]; j++ {
			for i := 0; i < src.Ext[0]; i++ {
				d := depth1(i, g, dom[0])
				if dj := depth1(j, g, dom[1]); dj > d {
					d = dj
				}
				if dk := depth1(k, g, dom[2]); dk > d {
					d = dk
				}
				if d > margin {
					continue // not computed
				}
				want := dst.At(i, j, k)
				got := out[src.Idx(i, j, k)]
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("%s margin %d at (%d,%d,%d): brick %v grid %v", st.Name, margin, i, j, k, got, want)
				}
			}
		}
	}
}

func TestBrickMatchesGridStar7(t *testing.T) {
	brickVsGrid(t, Star7(), [3]int{16, 16, 16}, 4, 0)
}

func TestBrickMatchesGridStar7Margin(t *testing.T) {
	brickVsGrid(t, Star7(), [3]int{16, 16, 16}, 4, 3)
}

func TestBrickMatchesGridCube125(t *testing.T) {
	brickVsGrid(t, Cube125(), [3]int{16, 16, 16}, 4, 0)
}

func TestBrickMatchesGridCube125Margin(t *testing.T) {
	brickVsGrid(t, Cube125(), [3]int{16, 16, 16}, 4, 2)
}

func TestBrickMatchesGridStar5(t *testing.T) {
	brickVsGrid(t, Star5(), [3]int{16, 16, 16}, 4, 1)
}

func TestBrickMatchesGridAnisotropic(t *testing.T) {
	brickVsGrid(t, Star7(), [3]int{24, 16, 12}, 4, 2)
}

func TestApplyBricksValidation(t *testing.T) {
	dec, err := core.NewBrickDecomp(core.Shape{4, 4, 4}, [3]int{16, 16, 16}, 4, 2, layout.Surface3D())
	if err != nil {
		t.Fatal(err)
	}
	bs := dec.Allocate()
	info := dec.BrickInfo()
	a := core.NewBrick(info, bs, 0)
	b := core.NewBrick(info, bs, 1)
	// margin + radius > ghost
	func() {
		defer func() {
			if recover() == nil {
				t.Error("margin overflow accepted")
			}
		}()
		ApplyBricks(b, a, dec, Star7(), 4)
	}()
	// radius > brick extent
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized radius accepted")
			}
		}()
		big := Stencil{Name: "r5", Radius: 5, Points: []Point{{5, 0, 0, 1}}}
		ApplyBricks(b, a, dec, big, 0)
	}()
}

func TestDepth1(t *testing.T) {
	// ghost 4, dom 8: ext coords 0..15.
	cases := []struct{ e, want int }{
		{0, 4}, {3, 1}, {4, 0}, {11, 0}, {12, 1}, {15, 4},
	}
	for _, c := range cases {
		if got := depth1(c.e, 4, 8); got != c.want {
			t.Errorf("depth1(%d) = %d, want %d", c.e, got, c.want)
		}
	}
}

func BenchmarkStar7Bricks64(b *testing.B) {
	dec, err := core.NewBrickDecomp(core.Shape{8, 8, 8}, [3]int{64, 64, 64}, 8, 2, layout.Surface3D())
	if err != nil {
		b.Fatal(err)
	}
	bs := dec.Allocate()
	info := dec.BrickInfo()
	src := core.NewBrick(info, bs, 0)
	dst := core.NewBrick(info, bs, 1)
	st := Star7()
	b.SetBytes(int64(8 * 64 * 64 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyBricks(dst, src, dec, st, 0)
	}
}

func BenchmarkStar7Grid64(b *testing.B) {
	src := grid.New([3]int{64, 64, 64}, 8)
	dst := grid.New([3]int{64, 64, 64}, 8)
	st := Star7()
	b.SetBytes(int64(8 * 64 * 64 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyGrid(dst, src, st, 0)
	}
}
