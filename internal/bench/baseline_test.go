package bench

import (
	"os"
	"strings"
	"testing"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/harness"
	"github.com/bricklab/brick/internal/metrics"
	"github.com/bricklab/brick/internal/netmodel"
	"github.com/bricklab/brick/internal/stencil"
)

// runLayout runs a tiny instrumented Layout configuration and returns its
// baseline.
func runLayout(t *testing.T) Baseline {
	t.Helper()
	reg := metrics.NewRegistry()
	cfg := harness.Config{
		Impl:    harness.Layout,
		Procs:   [3]int{2, 1, 1},
		Dom:     [3]int{16, 16, 16},
		Ghost:   8,
		Shape:   core.Shape{8, 8, 8},
		Stencil: stencil.Star7(),
		Steps:   4,
		Warmup:  1,
		Machine: netmodel.ThetaKNL(),
		Workers: 1,
		Metrics: reg,
	}
	res, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return FromResult(res, reg.Snapshot())
}

func TestFromResult(t *testing.T) {
	b := runLayout(t)
	if b.Schema != Schema {
		t.Errorf("schema = %q", b.Schema)
	}
	if b.Impl != "Layout" || b.Dim != 16 || b.Ranks != [3]int{2, 1, 1} {
		t.Errorf("config fields wrong: %+v", b)
	}
	if b.GStencils <= 0 {
		t.Errorf("GStencils = %v", b.GStencils)
	}
	if b.MsgsPerExchange <= 0 || b.WireBytes <= 0 {
		t.Errorf("message plan missing: %+v", b)
	}
	for _, phase := range []string{"calc", "pack", "call", "wait"} {
		p, ok := b.Phases[phase]
		if !ok {
			t.Fatalf("phase %s missing from baseline", phase)
		}
		if p.P50Sec > p.P90Sec || p.P90Sec > p.P99Sec || p.P99Sec > p.MaxSec {
			t.Errorf("phase %s: unordered percentiles %+v", phase, p)
		}
	}
	if b.Phases["calc"].MeanSec <= 0 {
		t.Error("calc mean is zero")
	}
	if b.Plan == nil {
		t.Fatal("compiled plan missing from baseline")
	}
	if b.Plan.Variant != "spans" || !b.Plan.Persistent || b.Plan.Digest == "" {
		t.Errorf("plan section wrong: %+v", *b.Plan)
	}
	if b.Plan.Sends == 0 || b.Plan.SendBytes == 0 {
		t.Errorf("plan empty: %+v", *b.Plan)
	}
}

func TestFilename(t *testing.T) {
	for impl, want := range map[string]string{
		"Layout":    "BENCH_Layout_16.json",
		"Layout-OL": "BENCH_LayoutOL_16.json",
		"MPI_Types": "BENCH_MPITypes_16.json",
	} {
		b := Baseline{Impl: impl, Dim: 16}
		if got := b.Filename(); got != want {
			t.Errorf("Filename(%s) = %s, want %s", impl, got, want)
		}
	}
	part := Baseline{Impl: "Layout", Dim: 16, Partitioned: true}
	if got, want := part.Filename(), "BENCH_Layout_16_partitioned.json"; got != want {
		t.Errorf("partitioned Filename = %s, want %s", got, want)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	b := runLayout(t)
	dir := t.TempDir()
	path, err := b.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Impl != b.Impl || got.GStencils != b.GStencils || len(got.Phases) != len(b.Phases) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, b)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.json"
	if err := writeFile(path, `{"schema":"other/v9"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("Load = %v, want schema error", err)
	}
}

func TestCompare(t *testing.T) {
	base := Baseline{
		Schema: Schema, Impl: "Layout", Dim: 16, Ranks: [3]int{2, 1, 1},
		Stencil: "star7", GStencils: 1.0, MsgsPerExchange: 42, WireBytes: 1 << 20,
	}
	ok := base
	ok.GStencils = 0.95
	if err := Compare(base, ok, 0.10); err != nil {
		t.Errorf("5%% drop within 10%% gate failed: %v", err)
	}
	slow := base
	slow.GStencils = 0.85
	if err := Compare(base, slow, 0.10); err == nil {
		t.Error("15% drop passed a 10% gate")
	}
	faster := base
	faster.GStencils = 2.0
	if err := Compare(base, faster, 0.10); err != nil {
		t.Errorf("improvement failed the gate: %v", err)
	}
	otherImpl := base
	otherImpl.Impl = "MemMap"
	if err := Compare(base, otherImpl, 0.10); err == nil {
		t.Error("mismatched impls compared")
	}
	part := base
	part.Partitioned = true
	if err := Compare(base, part, 0.10); err == nil {
		t.Error("partitioned run compared against a non-partitioned baseline")
	}
	plan := base
	plan.MsgsPerExchange = 26
	if err := Compare(base, plan, 0.10); err == nil {
		t.Error("message-plan change passed the gate")
	}
	wire := base
	wire.WireBytes = 2 << 20
	if err := Compare(base, wire, 0.10); err == nil {
		t.Error("wire-bytes change passed the gate")
	}
	withPlan := base
	withPlan.Plan = &core.PlanSummary{Variant: "spans", Digest: "aaaa"}
	samePlan := base
	samePlan.Plan = &core.PlanSummary{Variant: "spans", Digest: "aaaa"}
	if err := Compare(withPlan, samePlan, 0.10); err != nil {
		t.Errorf("identical plan digests failed the gate: %v", err)
	}
	changed := base
	changed.Plan = &core.PlanSummary{Variant: "spans", Digest: "bbbb"}
	if err := Compare(withPlan, changed, 0.10); err == nil {
		t.Error("plan digest change passed the gate")
	}
	if err := Compare(base, changed, 0.10); err != nil {
		t.Errorf("pre-plan baseline gated on digest: %v", err)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
