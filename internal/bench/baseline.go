// Package bench defines the machine-readable benchmark baseline format
// (BENCH_<impl>_<dim>.json, schema "brick-bench/v1") and the regression
// gate that compares a fresh run against a committed baseline. Baselines
// capture the configuration, throughput, message plan, and per-phase
// latency percentiles of one run so CI can detect performance drift
// without re-deriving anything from raw metrics.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/bricklab/brick/internal/core"
	"github.com/bricklab/brick/internal/harness"
	"github.com/bricklab/brick/internal/metrics"
)

// Schema identifies the baseline file format.
const Schema = "brick-bench/v1"

// Phase holds one phase's per-step latency summary in seconds.
type Phase struct {
	MeanSec float64 `json:"mean_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P90Sec  float64 `json:"p90_sec"`
	P99Sec  float64 `json:"p99_sec"`
	MaxSec  float64 `json:"max_sec"`
}

// Baseline is one run's benchmark record.
type Baseline struct {
	Schema  string `json:"schema"`
	Impl    string `json:"impl"`
	Dim     int    `json:"dim"` // cubic subdomain dimension per rank
	Ranks   [3]int `json:"ranks"`
	Stencil string `json:"stencil"`
	Steps   int    `json:"steps"`
	Workers int    `json:"workers"`
	// Partitioned marks a run with partitioned persistent sends (MPI 4.x
	// Pready pipelining). It is part of the configuration identity: a
	// partitioned run gates only against a partitioned baseline.
	Partitioned bool `json:"partitioned,omitempty"`

	GStencils       float64 `json:"gstencils"` // 1e9 stencil updates/s
	MsgsPerExchange int     `json:"msgs_per_exchange"`
	DataBytes       int64   `json:"data_bytes"` // per rank per exchange
	WireBytes       int64   `json:"wire_bytes"` // per rank per exchange

	// Phases maps phase name (calc/pack/call/wait) to its cross-rank
	// per-step latency summary, taken from the rank="all" histograms.
	Phases map[string]Phase `json:"phases"`

	// Plan is rank 0's compiled exchange plan (variant, message counts,
	// bytes, digest). Nil for GPU baselines, whose exchanges are modeled.
	// The digest is deterministic, so Compare treats any change as a
	// behaviour change.
	Plan *core.PlanSummary `json:"plan,omitempty"`
}

// FromResult builds a baseline from a harness result plus the metrics
// snapshot of the same run (phase percentiles come from the rank="all"
// aggregate series). snap may be nil; Phases is then empty.
func FromResult(res harness.Result, snap *metrics.Snapshot) Baseline {
	cfg := res.Config
	b := Baseline{
		Schema:          Schema,
		Impl:            cfg.Impl.String(),
		Dim:             cfg.Dom[0],
		Ranks:           cfg.Procs,
		Stencil:         cfg.Stencil.Name,
		Steps:           cfg.Steps,
		Workers:         cfg.Workers,
		Partitioned:     cfg.Partitioned,
		GStencils:       res.GStencils,
		MsgsPerExchange: res.MsgsPerExchange,
		DataBytes:       res.DataBytes,
		WireBytes:       res.WireBytes,
		Phases:          map[string]Phase{},
		Plan:            res.Plan,
	}
	if snap == nil {
		return b
	}
	for _, h := range snap.FindHistograms(metrics.PhaseSeconds, map[string]string{
		"impl": b.Impl, "rank": "all",
	}) {
		b.Phases[h.Labels["phase"]] = Phase{
			MeanSec: h.Mean(),
			P50Sec:  h.P50,
			P90Sec:  h.P90,
			P99Sec:  h.P99,
			MaxSec:  h.Max,
		}
	}
	return b
}

// Filename returns the canonical baseline file name,
// BENCH_<impl>_<dim>.json, with impl normalized to file-safe characters
// (e.g. "Layout-OL" → "LayoutOL", "MPI_Types" → "MPITypes"). Partitioned
// runs get their own file (BENCH_<impl>_<dim>_partitioned.json) so both
// variants of one implementation can be gated side by side.
func (b Baseline) Filename() string {
	impl := strings.NewReplacer("-", "", "_", "").Replace(b.Impl)
	if b.Partitioned {
		return fmt.Sprintf("BENCH_%s_%d_partitioned.json", impl, b.Dim)
	}
	return fmt.Sprintf("BENCH_%s_%d.json", impl, b.Dim)
}

// Write stores the baseline under dir using its canonical filename and
// returns the full path.
func (b Baseline) Write(dir string) (string, error) {
	if b.Schema == "" {
		b.Schema = Schema
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, b.Filename())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads and validates one baseline file.
func Load(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if b.Schema != Schema {
		return b, fmt.Errorf("bench: %s: schema %q, want %q", path, b.Schema, Schema)
	}
	return b, nil
}

// Compare gates cur against base: it returns an error when throughput
// dropped by more than maxDrop (a fraction, e.g. 0.10 for 10%), or when
// the two baselines describe different configurations and are therefore
// not comparable. Message-plan changes (msgs/bytes per exchange) also
// fail: they are deterministic, so any difference is a behaviour change,
// not noise.
func Compare(base, cur Baseline, maxDrop float64) error {
	if base.Impl != cur.Impl || base.Dim != cur.Dim || base.Ranks != cur.Ranks ||
		base.Stencil != cur.Stencil || base.Partitioned != cur.Partitioned {
		return fmt.Errorf("bench: baselines not comparable: %s/%d/%v/%s/part=%t vs %s/%d/%v/%s/part=%t",
			base.Impl, base.Dim, base.Ranks, base.Stencil, base.Partitioned,
			cur.Impl, cur.Dim, cur.Ranks, cur.Stencil, cur.Partitioned)
	}
	if base.MsgsPerExchange != cur.MsgsPerExchange {
		return fmt.Errorf("bench: %s: msgs/exchange changed %d → %d",
			base.Impl, base.MsgsPerExchange, cur.MsgsPerExchange)
	}
	if base.WireBytes != cur.WireBytes {
		return fmt.Errorf("bench: %s: wire bytes/exchange changed %d → %d",
			base.Impl, base.WireBytes, cur.WireBytes)
	}
	// A digest change means different peers, tags, or payloads — a plan
	// behaviour change even when the totals happen to agree. Baselines
	// recorded before plans were captured (nil) are not gated.
	if base.Plan != nil && cur.Plan != nil && base.Plan.Digest != cur.Plan.Digest {
		return fmt.Errorf("bench: %s: exchange plan digest changed %s → %s",
			base.Impl, base.Plan.Digest, cur.Plan.Digest)
	}
	if base.GStencils > 0 {
		floor := base.GStencils * (1 - maxDrop)
		if cur.GStencils < floor {
			return fmt.Errorf("bench: %s: GStencil/s regressed %.4f → %.4f (floor %.4f at -%.0f%%)",
				base.Impl, base.GStencils, cur.GStencils, floor, maxDrop*100)
		}
	}
	return nil
}
