package brick_test

import (
	"testing"

	brick "github.com/bricklab/brick"
)

// TestPublicAPISmoke exercises the facade end to end: world, topology,
// decomposition, both exchanges, and the layout helpers.
func TestPublicAPISmoke(t *testing.T) {
	if got := brick.MessageCount(brick.Surface3D()); got != 42 {
		t.Fatalf("Surface3D messages = %d", got)
	}
	if brick.OptimalMessages(3) != 42 || brick.NumNeighbors(3) != 26 || brick.BasicMessages(3) != 98 {
		t.Fatal("closed forms wrong through facade")
	}
	if len(brick.Regions(2)) != 8 {
		t.Fatal("Regions through facade")
	}
	if s := brick.FromDirs(-1, 2); s.String() != "{-1,+2}" {
		t.Fatalf("FromDirs = %v", s)
	}

	world := brick.NewWorld(8)
	world.Run(func(c *brick.Comm) {
		cart := brick.NewCart(c, []int{2, 2, 2}, []bool{true, true, true})
		dec, err := brick.NewBrickDecomp(brick.Shape{4, 4, 4}, [3]int{16, 16, 16}, 4, 1, brick.Surface3D())
		if err != nil {
			t.Error(err)
			return
		}
		storage := dec.Allocate()
		dec.SetElem(storage, 0, 4, 4, 4, float64(c.Rank()+1))
		ex := brick.NewExchanger(dec, cart)
		if n := ex.Exchange(storage); n != 42 {
			t.Errorf("exchange sent %d messages", n)
		}
		// Collective through the facade.
		sum := c.Allreduce1(brick.OpSum, 1)
		if sum != 8 {
			t.Errorf("allreduce = %v", sum)
		}
	})
}

func TestPublicOptimize(t *testing.T) {
	order := brick.Optimize(2)
	if brick.MessageCount(order) != 9 {
		t.Errorf("Optimize(2) = %d messages", brick.MessageCount(order))
	}
}

func TestStencilFacade(t *testing.T) {
	st := brick.Star7()
	if len(st.Points) != 7 || st.Radius != 1 {
		t.Fatalf("Star7 through facade: %d points", len(st.Points))
	}
	if len(brick.Cube125().Points) != 125 || len(brick.Star5().Points) != 5 {
		t.Fatal("stencil constructors")
	}
	// A complete facade-only stencil step.
	world := brick.NewWorld(1)
	world.Run(func(c *brick.Comm) {
		cart := brick.NewCart(c, []int{1, 1, 1}, []bool{true, true, true})
		dec, err := brick.NewBrickDecomp(brick.Shape{4, 4, 4}, [3]int{8, 8, 8}, 4, 2, brick.Surface3D())
		if err != nil {
			t.Error(err)
			return
		}
		storage := dec.Allocate()
		info := dec.BrickInfo()
		dec.SetElem(storage, 0, 8, 8, 8, 64.0)
		brick.NewExchanger(dec, cart).Exchange(storage)
		brick.ApplyBricks(brick.NewBrick(info, storage, 1), brick.NewBrick(info, storage, 0), dec, st, 0)
		sum := 0.0
		for z := 0; z < 8; z++ {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					sum += dec.Elem(storage, 1, x+4, y+4, z+4)
				}
			}
		}
		if diff := sum - 64.0; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("facade stencil step lost mass: %v", sum)
		}
	})
}
