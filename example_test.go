package brick_test

import (
	"fmt"

	brick "github.com/bricklab/brick"
)

// The optimal 3D surface layout needs 42 messages for 26 neighbors, against
// 98 for the Basic per-region plan — the paper's Table 1 row for D=3.
func ExampleSurface3D() {
	order := brick.Surface3D()
	fmt.Println("regions:", len(order))
	fmt.Println("messages:", brick.MessageCount(order))
	fmt.Println("neighbors:", brick.NumNeighbors(3))
	fmt.Println("basic:", brick.BasicMessages(3))
	// Output:
	// regions: 26
	// messages: 42
	// neighbors: 26
	// basic: 98
}

// The optimizer recovers the Eq. 1 optimum from scratch.
func ExampleOptimize() {
	order := brick.Optimize(2)
	fmt.Println("2D messages:", brick.MessageCount(order), "- optimal:", brick.OptimalMessages(2))
	// Output:
	// 2D messages: 9 - optimal: 9
}

// Direction sets use the paper's notation: r({A1-, A2+}) is FromDirs(-1, 2).
func ExampleFromDirs() {
	corner := brick.FromDirs(-1, -2, -3)
	face := brick.FromDirs(2)
	fmt.Println(corner, "weight", corner.Weight())
	fmt.Println(face, "subset of corner:", face.SubsetOf(corner))
	fmt.Println(brick.FromDirs(-2), "subset of corner:", brick.FromDirs(-2).SubsetOf(corner))
	// Output:
	// {-1,-2,-3} weight 3
	// {+2} subset of corner: false
	// {-2} subset of corner: true
}

// A complete single-rank periodic setup: decompose, exchange, inspect the
// message plan.
func ExampleNewBrickDecomp() {
	world := brick.NewWorld(1)
	world.Run(func(c *brick.Comm) {
		cart := brick.NewCart(c, []int{1, 1, 1}, []bool{true, true, true})
		dec, err := brick.NewBrickDecomp(brick.Shape{8, 8, 8},
			[3]int{32, 32, 32}, 8, 1, brick.Surface3D())
		if err != nil {
			panic(err)
		}
		storage := dec.Allocate()
		ex := brick.NewExchanger(dec, cart)
		sent := ex.Exchange(storage)
		fmt.Println("messages per exchange:", sent)
		fmt.Println("bricks:", dec.NumBricks(), "interior:", dec.Interior().NBricks)
	})
	// Output:
	// messages per exchange: 42
	// bricks: 216 interior: 8
}
